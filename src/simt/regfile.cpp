#include "simt/regfile.hpp"

#include <algorithm>
#include <limits>

#include "support/bits.hpp"
#include "support/logging.hpp"

namespace simt
{

namespace
{

/** Pack a CapMeta into a 64-bit lane value for VRF/spill storage. */
uint64_t
packMeta(const CapMeta &m)
{
    return (static_cast<uint64_t>(m.tag) << 32) | m.meta;
}

CapMeta
unpackMeta(uint64_t v)
{
    return CapMeta{static_cast<uint32_t>(v), ((v >> 32) & 1) != 0};
}

/** Does a data vector compress to base+stride with an 8-bit stride? */
bool
compressData(const std::vector<uint32_t> &vals, uint32_t &base,
             int32_t &stride)
{
    base = vals[0];
    stride = vals.size() > 1
                 ? static_cast<int32_t>(vals[1] - vals[0])
                 : 0;
    if (stride < -128 || stride > 127)
        return false;
    for (size_t i = 1; i < vals.size(); ++i) {
        if (vals[i] - vals[i - 1] != static_cast<uint32_t>(stride))
            return false;
    }
    return true;
}

} // namespace

RegFileSystem::RegFileSystem(const SmConfig &cfg, support::StatSet &stats)
    : cfg_(cfg), stats_(stats),
      statDataSpills_(stats.handle("vrf_data_spills")),
      statMetaSpills_(stats.handle("vrf_meta_spills")),
      statDataReloads_(stats.handle("vrf_data_reloads")),
      statMetaReloads_(stats.handle("vrf_meta_reloads")),
      statNvoHits_(stats.handle("meta_nvo_hits")),
      statVrfPeak_(stats.handle("vrf_peak_used"))
{
    const unsigned entries = cfg_.numVectorRegs();
    dataEntries_.resize(entries);

    if (cfg_.purecap) {
        metaEntries_.resize(entries);
        if (!cfg_.metaCompressed) {
            flatMeta_.resize(static_cast<size_t>(entries) * cfg_.numLanes);
            for (auto &e : metaEntries_)
                e.kind = Kind::Flat;
        }
    }

    if (cfg_.sharedVrf || !cfg_.purecap || !cfg_.metaCompressed) {
        dataCapacity_ = cfg_.vrfCapacity;
        metaCapacity_ = cfg_.sharedVrf ? cfg_.vrfCapacity : 0;
    } else {
        // Split-VRF configuration: each file gets its own allocator of the
        // configured capacity.
        dataCapacity_ = cfg_.vrfCapacity;
        metaCapacity_ = cfg_.vrfCapacity;
    }
}

void
RegFileSystem::reset()
{
    for (auto &e : dataEntries_)
        e = Entry{};
    if (cfg_.purecap) {
        for (auto &e : metaEntries_) {
            e = Entry{};
            if (!cfg_.metaCompressed)
                e.kind = Kind::Flat;
        }
        std::fill(flatMeta_.begin(), flatMeta_.end(), CapMeta{});
    }
    slots_.clear();
    slotInfo_.clear();
    freeSlots_.clear();
    spillStore_.clear();
    freeSpillIds_.clear();
    usedSlots_ = 0;
    dataSlotsUsed_ = 0;
    metaSlotsUsed_ = 0;
    dataVecCount_ = 0;
    metaVecCount_ = 0;
    capRegMask_ = 0;
    useClock_ = 0;
}

unsigned
RegFileSystem::entryIndex(unsigned warp, unsigned reg) const
{
    return warp * cfg_.numRegs + reg;
}

int
RegFileSystem::allocSlot(bool for_meta, RfAccess &acc)
{
    const bool shared = cfg_.sharedVrf;
    for (;;) {
        if (shared) {
            if (usedSlots_ < cfg_.vrfCapacity)
                break;
        } else {
            const unsigned used = for_meta ? metaSlotsUsed_ : dataSlotsUsed_;
            const unsigned cap = for_meta ? metaCapacity_ : dataCapacity_;
            if (used < cap)
                break;
        }
        spillVictim(for_meta, acc);
    }

    int slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<int>(slots_.size());
        slots_.emplace_back(cfg_.numLanes, 0);
        slotInfo_.emplace_back();
    }
    ++usedSlots_;
    if (for_meta)
        ++metaSlotsUsed_;
    else
        ++dataSlotsUsed_;
    slotInfo_[slot].isMeta = for_meta;
    slotInfo_[slot].lastUse = ++useClock_;
    statVrfPeak_.trackMax(usedSlots_);
    return slot;
}

void
RegFileSystem::freeSlot(int slot, bool for_meta)
{
    freeSlots_.push_back(slot);
    --usedSlots_;
    if (for_meta)
        --metaSlotsUsed_;
    else
        --dataSlotsUsed_;
}

void
RegFileSystem::spillVictim(bool for_meta, RfAccess &acc)
{
    // Choose the least-recently-used resident vector. In the shared-VRF
    // configuration any resident vector may be evicted; with split VRFs
    // only vectors of the requesting file free usable space.
    int victim = -1;
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (size_t s = 0; s < slots_.size(); ++s) {
        if (std::find(freeSlots_.begin(), freeSlots_.end(),
                      static_cast<int>(s)) != freeSlots_.end())
            continue;
        if (!cfg_.sharedVrf && slotInfo_[s].isMeta != for_meta)
            continue;
        if (slotInfo_[s].lastUse < best) {
            best = slotInfo_[s].lastUse;
            victim = static_cast<int>(s);
        }
    }
    panic_if(victim < 0, "VRF full with no evictable slot");

    const SlotInfo &info = slotInfo_[victim];
    Entry &e = (info.isMeta ? metaEntries_ : dataEntries_)
        [entryIndex(info.warp, info.reg)];
    panic_if(e.kind != Kind::Vector || e.slot != victim,
             "inconsistent VRF slot mapping");

    int spill_id;
    if (!freeSpillIds_.empty()) {
        spill_id = freeSpillIds_.back();
        freeSpillIds_.pop_back();
        spillStore_[spill_id] = slots_[victim];
    } else {
        spill_id = static_cast<int>(spillStore_.size());
        spillStore_.push_back(slots_[victim]);
    }

    e.kind = Kind::Spilled;
    e.spillId = spill_id;
    e.slot = -1;
    if (info.isMeta)
        --metaVecCount_;
    else
        --dataVecCount_;
    freeSlot(victim, info.isMeta);

    ++acc.spills;
    acc.dramBytes += cfg_.numLanes * (info.isMeta ? 8 : 4);
    (info.isMeta ? statMetaSpills_ : statDataSpills_).add();
}

void
RegFileSystem::expandData(const Entry &e, std::vector<uint32_t> &out) const
{
    out.resize(cfg_.numLanes);
    switch (e.kind) {
      case Kind::Scalar: {
        // Same closed-form expansion as a descriptor read's
        // DataDesc::materialiseTo, so eager and lazy reads agree.
        DataDesc d;
        d.base = e.base;
        d.stride = e.stride;
        d.materialiseTo(out.data(), cfg_.numLanes);
        break;
      }
      case Kind::Vector:
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            out[i] = static_cast<uint32_t>(slots_[e.slot][i]);
        break;
      case Kind::Spilled:
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            out[i] = static_cast<uint32_t>(spillStore_[e.spillId][i]);
        break;
      default:
        panic("bad data entry kind");
    }
}

void
RegFileSystem::expandMeta(const Entry &e, std::vector<CapMeta> &out) const
{
    out.resize(cfg_.numLanes);
    switch (e.kind) {
      case Kind::Scalar:
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            out[i] = CapMeta{e.base, e.tag};
        break;
      case Kind::PartialNull:
        for (unsigned i = 0; i < cfg_.numLanes; ++i) {
            out[i] = (e.nullMask >> i) & 1 ? CapMeta{}
                                           : CapMeta{e.base, e.tag};
        }
        break;
      case Kind::Vector:
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            out[i] = unpackMeta(slots_[e.slot][i]);
        break;
      case Kind::Spilled:
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            out[i] = unpackMeta(spillStore_[e.spillId][i]);
        break;
      default:
        panic("bad meta entry kind");
    }
}

void
RegFileSystem::unspillData(Entry &e, unsigned warp, unsigned reg,
                           RfAccess &acc)
{
    const int spill_id = e.spillId;
    const int slot = allocSlot(false, acc);
    slots_[slot] = spillStore_[spill_id];
    freeSpillIds_.push_back(spill_id);
    e.kind = Kind::Vector;
    e.slot = slot;
    e.spillId = -1;
    slotInfo_[slot].warp = warp;
    slotInfo_[slot].reg = reg;
    ++dataVecCount_;
    ++acc.reloads;
    acc.dramBytes += cfg_.numLanes * 4;
    statDataReloads_.add();
}

void
RegFileSystem::unspillMeta(Entry &e, unsigned warp, unsigned reg,
                           RfAccess &acc)
{
    const int spill_id = e.spillId;
    const int slot = allocSlot(true, acc);
    slots_[slot] = spillStore_[spill_id];
    freeSpillIds_.push_back(spill_id);
    e.kind = Kind::Vector;
    e.slot = slot;
    e.spillId = -1;
    slotInfo_[slot].warp = warp;
    slotInfo_[slot].reg = reg;
    ++metaVecCount_;
    ++acc.reloads;
    acc.dramBytes += cfg_.numLanes * 8;
    statMetaReloads_.add();
}

void
RegFileSystem::readData(unsigned warp, unsigned reg,
                        std::vector<uint32_t> &out, RfAccess &acc)
{
    Entry &e = dataEntries_[entryIndex(warp, reg)];
    if (e.kind == Kind::Spilled)
        unspillData(e, warp, reg, acc);
    if (e.kind == Kind::Vector) {
        acc.dataFromVrf = true;
        slotInfo_[e.slot].lastUse = ++useClock_;
    }
    expandData(e, out);
}

void
RegFileSystem::writeData(unsigned warp, unsigned reg,
                         const std::vector<uint32_t> &vals,
                         const LaneMask &mask, RfAccess &acc)
{
    if (reg == 0)
        return; // x0 is hardwired to zero

    const std::vector<uint32_t> *src = &vals;
    if (injector_ && injector_->stuckLaneActive()) {
        const unsigned lane = injector_->plan().lane % cfg_.numLanes;
        if (mask[lane]) {
            faultDataScratch_ = vals;
            injector_->corruptLaneValue(faultDataScratch_[lane]);
            src = &faultDataScratch_;
        }
    }

    Entry &e = dataEntries_[entryIndex(warp, reg)];

    bool full_mask = true;
    for (unsigned i = 0; i < cfg_.numLanes; ++i)
        full_mask = full_mask && mask[i];

    // Merge through a pointer: the full-mask write (the common case)
    // uses the caller's buffer directly instead of copying it.
    const std::vector<uint32_t> *merged = src;
    if (!full_mask) {
        if (e.kind == Kind::Spilled)
            unspillData(e, warp, reg, acc);
        expandData(e, mergeDataScratch_);
        for (unsigned i = 0; i < cfg_.numLanes; ++i) {
            if (mask[i])
                mergeDataScratch_[i] = (*src)[i];
        }
        merged = &mergeDataScratch_;
    }

    uint32_t base;
    int32_t stride;
    if (compressData(*merged, base, stride)) {
        if (e.kind == Kind::Vector) {
            freeSlot(e.slot, false);
            --dataVecCount_;
        }
        e.kind = Kind::Scalar;
        e.base = base;
        e.stride = stride;
        e.slot = -1;
        return;
    }

    if (e.kind != Kind::Vector) {
        const int slot = allocSlot(false, acc);
        e.kind = Kind::Vector;
        e.slot = slot;
        slotInfo_[slot].warp = warp;
        slotInfo_[slot].reg = reg;
        ++dataVecCount_;
    }
    slotInfo_[e.slot].lastUse = ++useClock_;
    acc.dataFromVrf = true;
    for (unsigned i = 0; i < cfg_.numLanes; ++i)
        slots_[e.slot][i] = (*merged)[i];
}

void
RegFileSystem::readMeta(unsigned warp, unsigned reg,
                        std::vector<CapMeta> &out, RfAccess &acc)
{
    panic_if(!cfg_.purecap, "metadata access without purecap");
    if (!cfg_.metaCompressed) {
        out.resize(cfg_.numLanes);
        const size_t base =
            static_cast<size_t>(entryIndex(warp, reg)) * cfg_.numLanes;
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            out[i] = flatMeta_[base + i];
        return;
    }
    Entry &e = metaEntries_[entryIndex(warp, reg)];
    if (e.kind == Kind::Spilled)
        unspillMeta(e, warp, reg, acc);
    if (e.kind == Kind::Vector) {
        acc.metaFromVrf = true;
        slotInfo_[e.slot].lastUse = ++useClock_;
    }
    expandMeta(e, out);
}

void
RegFileSystem::writeMeta(unsigned warp, unsigned reg,
                         const std::vector<CapMeta> &vals,
                         const LaneMask &mask, RfAccess &acc)
{
    panic_if(!cfg_.purecap, "metadata access without purecap");
    if (reg == 0)
        return;

    const std::vector<CapMeta> *src = &vals;
    if (injector_ && injector_->shouldCorruptMetaWrite(warp, reg)) {
        faultMetaScratch_ = vals;
        injector_->corruptMeta(
            faultMetaScratch_[injector_->plan().lane % cfg_.numLanes]);
        src = &faultMetaScratch_;
    }

    bool any_nonnull = false;
    for (unsigned i = 0; i < cfg_.numLanes; ++i) {
        if (mask[i] && !(*src)[i].isNull()) {
            panic_if(reg >= cfg_.metaRegsTracked,
                     "capability written to x%u, beyond the metadata "
                     "SRF's %u tracked registers",
                     reg, cfg_.metaRegsTracked);
            capRegMask_ |= uint32_t{1} << reg;
            any_nonnull = true;
            break;
        }
    }

    if (!cfg_.metaCompressed) {
        const size_t base =
            static_cast<size_t>(entryIndex(warp, reg)) * cfg_.numLanes;
        for (unsigned i = 0; i < cfg_.numLanes; ++i) {
            if (mask[i])
                flatMeta_[base + i] = (*src)[i];
        }
        return;
    }

    Entry &e = metaEntries_[entryIndex(warp, reg)];

    // Every written lane carries the null capability and the entry is
    // already the uniform null scalar: merging and re-classifying would
    // rebuild exactly this representation, with no occupancy-counter or
    // RfAccess side effects, so the write is a no-op. (A Scalar entry
    // always has slot == -1, and nullMask is ignored for scalars.)
    if (!any_nonnull && e.kind == Kind::Scalar && !e.tag && e.base == 0)
        return;

    bool full_mask = true;
    for (unsigned i = 0; i < cfg_.numLanes; ++i)
        full_mask = full_mask && mask[i];

    // Merge through a pointer: the full-mask write (the common case)
    // uses the caller's buffer directly instead of copying it.
    const std::vector<CapMeta> *mergedp = src;
    if (!full_mask) {
        if (e.kind == Kind::Spilled)
            unspillMeta(e, warp, reg, acc);
        expandMeta(e, mergeMetaScratch_);
        for (unsigned i = 0; i < cfg_.numLanes; ++i) {
            if (mask[i])
                mergeMetaScratch_[i] = (*src)[i];
        }
        mergedp = &mergeMetaScratch_;
    }
    const std::vector<CapMeta> &merged = *mergedp;

    // Classify: uniform; else (with NVO) one non-null value plus nulls;
    // else a general vector.
    bool uniform = true;
    for (unsigned i = 1; i < cfg_.numLanes; ++i)
        uniform = uniform && merged[i] == merged[0];

    if (uniform) {
        if (e.kind == Kind::Vector) {
            freeSlot(e.slot, true);
            --metaVecCount_;
        }
        e.kind = Kind::Scalar;
        e.base = merged[0].meta;
        e.tag = merged[0].tag;
        e.nullMask = 0;
        e.slot = -1;
        return;
    }

    if (cfg_.nvo) {
        CapMeta value{};
        bool have_value = false;
        bool partial_null = true;
        uint32_t null_mask = 0;
        for (unsigned i = 0; i < cfg_.numLanes; ++i) {
            if (merged[i].isNull()) {
                null_mask |= uint32_t{1} << i;
            } else if (!have_value) {
                value = merged[i];
                have_value = true;
            } else if (!(merged[i] == value)) {
                partial_null = false;
                break;
            }
        }
        if (partial_null) {
            if (e.kind == Kind::Vector) {
                freeSlot(e.slot, true);
                --metaVecCount_;
            }
            e.kind = Kind::PartialNull;
            e.base = value.meta;
            e.tag = value.tag;
            e.nullMask = null_mask;
            e.slot = -1;
            statNvoHits_.add();
            return;
        }
    }

    if (e.kind != Kind::Vector) {
        const int slot = allocSlot(true, acc);
        e.kind = Kind::Vector;
        e.slot = slot;
        slotInfo_[slot].warp = warp;
        slotInfo_[slot].reg = reg;
        ++metaVecCount_;
    }
    slotInfo_[e.slot].lastUse = ++useClock_;
    acc.metaFromVrf = true;
    for (unsigned i = 0; i < cfg_.numLanes; ++i)
        slots_[e.slot][i] = packMeta(merged[i]);
}

void
RegFileSystem::readDataDesc(unsigned warp, unsigned reg,
                            std::vector<uint32_t> &scratch, DataDesc &desc,
                            RfAccess &acc)
{
    Entry &e = dataEntries_[entryIndex(warp, reg)];
    if (e.kind == Kind::Spilled)
        unspillData(e, warp, reg, acc);
    if (e.kind == Kind::Vector) {
        acc.dataFromVrf = true;
        slotInfo_[e.slot].lastUse = ++useClock_;
        scratch.resize(cfg_.numLanes);
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            scratch[i] = static_cast<uint32_t>(slots_[e.slot][i]);
        desc.kind = DataDesc::Kind::Lanes;
        desc.lanes = scratch.data();
        return;
    }
    desc.kind = DataDesc::Kind::Affine;
    desc.base = e.base;
    desc.stride = e.stride;
    desc.lanes = nullptr;
}

void
RegFileSystem::readMetaDesc(unsigned warp, unsigned reg,
                            std::vector<CapMeta> &scratch, MetaDesc &desc,
                            RfAccess &acc)
{
    panic_if(!cfg_.purecap, "metadata access without purecap");
    if (!cfg_.metaCompressed) {
        // Uncompressed file: detect uniformity on the fly so the plain
        // CHERI configuration also benefits from the fast path.
        const size_t base =
            static_cast<size_t>(entryIndex(warp, reg)) * cfg_.numLanes;
        bool uniform = true;
        for (unsigned i = 1; i < cfg_.numLanes && uniform; ++i)
            uniform = flatMeta_[base + i] == flatMeta_[base];
        if (uniform) {
            desc.kind = MetaDesc::Kind::Uniform;
            desc.value = flatMeta_[base];
            desc.lanes = nullptr;
            desc.external = false;
        } else {
            desc.kind = MetaDesc::Kind::Lanes;
            desc.lanes = &flatMeta_[base];
            desc.external = true;
        }
        return;
    }
    Entry &e = metaEntries_[entryIndex(warp, reg)];
    if (e.kind == Kind::Spilled)
        unspillMeta(e, warp, reg, acc);
    if (e.kind == Kind::Vector) {
        acc.metaFromVrf = true;
        slotInfo_[e.slot].lastUse = ++useClock_;
        scratch.resize(cfg_.numLanes);
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            scratch[i] = unpackMeta(slots_[e.slot][i]);
        desc.kind = MetaDesc::Kind::Lanes;
        desc.lanes = scratch.data();
        desc.external = false;
        return;
    }
    if (e.kind == Kind::PartialNull) {
        desc.kind = MetaDesc::Kind::PartialNull;
        desc.value = CapMeta{e.base, e.tag};
        desc.nullMask = e.nullMask;
        desc.lanes = nullptr;
        desc.external = false;
        return;
    }
    desc.kind = MetaDesc::Kind::Uniform;
    desc.value = CapMeta{e.base, e.tag};
    desc.lanes = nullptr;
    desc.external = false;
}

void
RegFileSystem::writeDataAffine(unsigned warp, unsigned reg, uint32_t base,
                               int32_t stride, RfAccess &acc)
{
    if (reg == 0)
        return; // x0 is hardwired to zero

    if (injector_ && injector_->stuckLaneActive()) {
        // A stuck lane breaks the affine form: expand the sequence and
        // take the general write path so the corrupted lane is stored
        // (corruptLaneValue is idempotent, so the nested writeData call
        // re-applying the stuck bit changes nothing).
        faultDataScratch_.resize(cfg_.numLanes);
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            faultDataScratch_[i] =
                base + static_cast<uint32_t>(stride) * i;
        injector_->corruptLaneValue(
            faultDataScratch_[injector_->plan().lane % cfg_.numLanes]);
        const LaneMask full(cfg_.numLanes, 1);
        writeData(warp, reg, faultDataScratch_, full, acc);
        return;
    }

    Entry &e = dataEntries_[entryIndex(warp, reg)];

    // compressData of the expanded sequence: single-lane vectors always
    // compress with stride 0; otherwise the affine stride must fit 8 bits.
    const int32_t eff_stride = cfg_.numLanes > 1 ? stride : 0;
    if (eff_stride >= -128 && eff_stride <= 127) {
        if (e.kind == Kind::Vector) {
            freeSlot(e.slot, false);
            --dataVecCount_;
        }
        e.kind = Kind::Scalar;
        e.base = base;
        e.stride = eff_stride;
        e.slot = -1;
        return;
    }

    if (e.kind != Kind::Vector) {
        const int slot = allocSlot(false, acc);
        e.kind = Kind::Vector;
        e.slot = slot;
        slotInfo_[slot].warp = warp;
        slotInfo_[slot].reg = reg;
        ++dataVecCount_;
    }
    slotInfo_[e.slot].lastUse = ++useClock_;
    acc.dataFromVrf = true;
    for (unsigned i = 0; i < cfg_.numLanes; ++i)
        slots_[e.slot][i] = base + static_cast<uint32_t>(stride) * i;
}

void
RegFileSystem::writeMetaUniform(unsigned warp, unsigned reg,
                                const CapMeta &value, RfAccess &acc)
{
    (void)acc; // a uniform write never allocates in the VRF
    panic_if(!cfg_.purecap, "metadata access without purecap");
    if (reg == 0)
        return;

    CapMeta stored = value;
    if (injector_ && injector_->shouldCorruptMetaWrite(warp, reg))
        injector_->corruptMeta(stored);

    if (!stored.isNull()) {
        panic_if(reg >= cfg_.metaRegsTracked,
                 "capability written to x%u, beyond the metadata "
                 "SRF's %u tracked registers",
                 reg, cfg_.metaRegsTracked);
        capRegMask_ |= uint32_t{1} << reg;
    }

    if (!cfg_.metaCompressed) {
        const size_t base =
            static_cast<size_t>(entryIndex(warp, reg)) * cfg_.numLanes;
        for (unsigned i = 0; i < cfg_.numLanes; ++i)
            flatMeta_[base + i] = stored;
        return;
    }

    Entry &e = metaEntries_[entryIndex(warp, reg)];
    if (e.kind == Kind::Vector) {
        freeSlot(e.slot, true);
        --metaVecCount_;
    }
    e.kind = Kind::Scalar;
    e.base = stored.meta;
    e.tag = stored.tag;
    e.nullMask = 0;
    e.slot = -1;
}

uint64_t
RegFileSystem::dataStorageBits() const
{
    // SRF: two identical two-read-port instances of
    // (32-bit base + 8-bit stride + 2-bit kind) per vector register.
    const uint64_t srf = uint64_t{cfg_.numVectorRegs()} * 2 * (32 + 8 + 2);
    // VRF data plane (the shared-VRF width extension is charged to the
    // metadata file).
    const uint64_t vrf = uint64_t{cfg_.vrfCapacity} * cfg_.numLanes * 32;
    // Free stack: one slot index per VRF location.
    const uint64_t stack =
        uint64_t{cfg_.vrfCapacity} * support::ceilLog2(cfg_.vrfCapacity);
    return srf + vrf + stack;
}

uint64_t
RegFileSystem::metaStorageBits() const
{
    if (!cfg_.purecap)
        return 0;
    if (!cfg_.metaCompressed)
        return flatMetaStorageBits();

    // Metadata SRF: a single instance (one read port; CSC pays a cycle):
    // 33-bit uniform value + 2-bit kind + the NVO null mask. Only
    // metaRegsTracked registers per thread need entries (Section 4.3).
    const uint64_t entry_bits = 33 + 2 + (cfg_.nvo ? cfg_.numLanes : 0);
    const uint64_t entries =
        uint64_t{cfg_.numWarps} *
        std::min(cfg_.metaRegsTracked, cfg_.numRegs);
    uint64_t total = entries * entry_bits;

    if (cfg_.sharedVrf) {
        // Widening the shared VRF from 32 to 33 bits.
        total += uint64_t{cfg_.vrfCapacity} * cfg_.numLanes;
    } else {
        total += uint64_t{metaCapacity_} * cfg_.numLanes * 33 +
                 uint64_t{metaCapacity_} * support::ceilLog2(metaCapacity_);
    }
    return total;
}

uint64_t
RegFileSystem::flatDataStorageBits() const
{
    return uint64_t{cfg_.numVectorRegs()} * cfg_.numLanes * 32;
}

uint64_t
RegFileSystem::flatMetaStorageBits() const
{
    return uint64_t{cfg_.numVectorRegs()} * cfg_.numLanes * 33;
}

} // namespace simt
