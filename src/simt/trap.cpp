#include "simt/trap.hpp"

#include <ostream>

namespace simt
{

namespace
{

struct TrapName
{
    TrapKind kind;
    const char *name;
};

// The spellings are part of the cheri-simt-bench-v1 JSON schema; do not
// reword them without bumping the schema.
constexpr TrapName kTrapNames[] = {
    {TrapKind::None, ""},
    {TrapKind::TagViolation, "tag violation"},
    {TrapKind::SealViolation, "seal violation"},
    {TrapKind::LoadPermViolation, "load permission violation"},
    {TrapKind::StorePermViolation, "store permission violation"},
    {TrapKind::StoreCapPermViolation, "store-cap permission violation"},
    {TrapKind::MisalignedAccess, "misaligned access"},
    {TrapKind::BoundsViolation, "bounds violation"},
    {TrapKind::JumpTagViolation, "jump tag violation"},
    {TrapKind::JumpSealViolation, "jump seal violation"},
    {TrapKind::JumpPermViolation, "jump permission violation"},
    {TrapKind::JumpBoundsViolation, "jump bounds violation"},
    {TrapKind::InexactBounds, "inexact bounds"},
    {TrapKind::PccViolation, "pcc violation"},
    {TrapKind::BadFetchPc, "bad fetch pc"},
    {TrapKind::IllegalInstruction, "illegal instruction"},
    {TrapKind::BadScrIndex, "bad scr index"},
    {TrapKind::UnmappedAccess, "unmapped access"},
    {TrapKind::SoftwareBoundsTrap, "software bounds trap"},
    {TrapKind::BarrierDeadlock, "barrier-deadlock"},
    {TrapKind::WatchdogTimeout, "watchdog-timeout"},
};

} // namespace

const char *
trapKindName(TrapKind kind)
{
    for (const TrapName &entry : kTrapNames) {
        if (entry.kind == kind)
            return entry.name;
    }
    return "unknown";
}

TrapKind
trapKindFromName(std::string_view name)
{
    for (const TrapName &entry : kTrapNames) {
        if (name == entry.name)
            return entry.kind;
    }
    return TrapKind::None;
}

std::ostream &
operator<<(std::ostream &os, TrapKind kind)
{
    return os << trapKindName(kind);
}

} // namespace simt
