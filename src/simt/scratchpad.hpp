/**
 * @file
 * Banked scratchpad memory (CUDA __shared__ / OpenCL __local).
 *
 * Modelled as numBanks word-interleaved SRAM banks, each 33 bits wide so
 * that capabilities can be stored in shared memory (Section 3.4). A warp
 * access costs as many cycles as the worst per-bank conflict count;
 * lanes reading the same word in the same bank broadcast in one cycle.
 */

#ifndef CHERI_SIMT_SIMT_SCRATCHPAD_HPP_
#define CHERI_SIMT_SIMT_SCRATCHPAD_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cap/cheri_concentrate.hpp"
#include "simt/config.hpp"

namespace support
{
class ByteWriter;
class ByteReader;
} // namespace support

namespace simt
{

class Scratchpad
{
  public:
    explicit Scratchpad(const SmConfig &cfg);

    static bool
    contains(uint32_t addr)
    {
        return addr >= kSharedBase && addr < kSharedBase + kSharedSize;
    }

    uint8_t load8(uint32_t addr) const;
    uint16_t load16(uint32_t addr) const;
    uint32_t load32(uint32_t addr) const;
    void store8(uint32_t addr, uint8_t value);
    void store16(uint32_t addr, uint16_t value);
    void store32(uint32_t addr, uint32_t value);

    bool wordTag(uint32_t addr) const;
    void setWordTag(uint32_t addr, bool tag);

    cap::CapMem loadCap(uint32_t addr) const;
    void storeCap(uint32_t addr, const cap::CapMem &value);
    void clearTagForStore(uint32_t addr, unsigned bytes);

    /**
     * Cycles needed to serve a warp's accesses: the maximum number of
     * distinct words any single bank must serve (same-word accesses
     * broadcast, distinct words in the same bank serialise).
     */
    unsigned
    conflictCycles(const std::vector<uint32_t> &addrs,
                   const LaneMask &active) const;

    /** Order-dependent hash of all words and tags (parity tests). */
    uint64_t
    contentHash() const
    {
        constexpr uint64_t kPrime = 1099511628211ull;
        uint64_t h = 1469598103934665603ull;
        for (size_t i = 0; i < words_.size(); ++i) {
            const uint64_t v =
                (static_cast<uint64_t>(tags_[i]) << 32) | words_[i];
            h = (h ^ v) * kPrime;
        }
        return h;
    }

    void reset();

    /** Checkpoint serialization (simt/checkpoint.cpp). */
    void saveState(support::ByteWriter &w) const;
    bool loadState(support::ByteReader &r);

    /**
     * Arm the ScratchpadDropWrite fault site (see simt/faultinject.hpp):
     * the injector may silently discard a store8/16/32. nullptr -- the
     * default -- is fault-free.
     */
    void attachFaultInjector(FaultInjector *inj) { injector_ = inj; }

  private:
    size_t index(uint32_t addr) const;

    const SmConfig &cfg_;
    std::vector<uint32_t> words_;
    std::vector<bool> tags_;

    // conflictCycles scratch (persistent so the hot path never
    // allocates); mutable because the query is logically const.
    mutable std::vector<uint32_t> ccWords_;
    mutable std::vector<uint32_t> ccCounts_;
    FaultInjector *injector_ = nullptr;
};

} // namespace simt

#endif // CHERI_SIMT_SIMT_SCRATCHPAD_HPP_
