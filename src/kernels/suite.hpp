/**
 * @file
 * The NoCL benchmark suite of the paper (Table 1): fourteen CUDA-style
 * compute kernels written in the kc embedded DSL, each paired with a
 * host-side workload generator and reference checker.
 *
 * | Benchmark  | Description                              |
 * |------------|------------------------------------------|
 * | VecAdd     | Vector addition                          |
 * | Histogram  | 256-bin histogram                        |
 * | Reduce     | Vector summation                         |
 * | Scan       | Block-level parallel prefix sum          |
 * | Transpose  | Tiled matrix transpose (shared memory)   |
 * | MatVecMul  | Matrix x vector multiplication           |
 * | MatMul     | Matrix x matrix multiplication           |
 * | BitonicSm  | Bitonic sort of small (shared) arrays    |
 * | BitonicLa  | Bitonic sort of a large (global) array   |
 * | SPMV       | Sparse matrix x vector (CSR)             |
 * | BlkStencil | Block-based stencil (shared-memory tile) |
 * | StrStencil | Stripe-based stencil (global memory)     |
 * | VecGCD     | Vectorised greatest common divisor       |
 * | MotionEst  | Motion estimation (SAD search)           |
 *
 * BlkStencil deliberately contains the select-between-pointers pattern
 * (one pointer into shared memory, one into global memory) plus a
 * pointer array spilled to the stack: the source of capability-metadata
 * divergence and CSC traffic the paper analyses in Sections 4.3/4.5.
 */

#ifndef CHERI_SIMT_KERNELS_SUITE_HPP_
#define CHERI_SIMT_KERNELS_SUITE_HPP_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nocl/nocl.hpp"

namespace kernels
{

/** Workload size: Small keeps unit tests fast, Full is for benchmarks. */
enum class Size
{
    Small,
    Full,
};

/** A prepared run: kernel + launch geometry + args + result checker. */
struct Prepared
{
    kc::KernelDef *kernel = nullptr;
    nocl::LaunchConfig cfg;
    std::vector<nocl::Arg> args;
    std::function<bool(nocl::Device &)> verify;
};

class Benchmark
{
  public:
    virtual ~Benchmark() = default;
    virtual std::string name() const = 0;

    /** Allocate and fill device buffers; returns the run description. */
    virtual Prepared prepare(nocl::Device &dev, Size size) = 0;
};

/** The full 14-benchmark suite, in Table 1 order. */
std::vector<std::unique_ptr<Benchmark>> makeSuite();

/** A single benchmark by name (nullptr if unknown). */
std::unique_ptr<Benchmark> makeBenchmark(const std::string &name);

/**
 * Process-wide workload seed mixed into every benchmark's input
 * generator. The default, 0, reproduces the historical fixed inputs
 * bit-identically; any other value deterministically perturbs all
 * fourteen generators (the bench harnesses' --seed flag).
 */
void setWorkloadSeed(uint64_t seed);
uint64_t workloadSeed();

} // namespace kernels

#endif // CHERI_SIMT_KERNELS_SUITE_HPP_
