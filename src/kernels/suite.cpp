#include "kernels/suite.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "support/bits.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace kernels
{

namespace
{

std::atomic<uint64_t> g_workload_seed{0};

/**
 * Per-benchmark RNG seed: the historical fixed seed when no workload
 * seed is set (bit-identical default), otherwise a deterministic mix of
 * the two so distinct benchmarks stay decorrelated.
 */
uint64_t
benchSeed(uint64_t base)
{
    const uint64_t s = g_workload_seed.load(std::memory_order_relaxed);
    return s == 0 ? base : base ^ (s * 0x9e3779b97f4a7c15ull);
}

using kc::Kb;
using kc::Scalar;
using kc::Val;
using nocl::Arg;
using nocl::Buffer;
using nocl::Device;
using nocl::LaunchConfig;

/** Grid-stride global index: blockIdx*blockDim + threadIdx. */
Val
globalIdx(Kb &b)
{
    return b.blockIdx() * b.blockDim() + b.threadIdx();
}

Val
gridStride(Kb &b)
{
    return b.blockDim() * b.gridDim();
}

// =========================================================== 1. VecAdd

struct VecAddKernel : kc::KernelDef
{
    std::string name() const override { return "VecAdd"; }

    void
    build(Kb &b) override
    {
        auto len = b.paramI32("len");
        auto a = b.paramPtr("a", Scalar::U32);
        auto bb = b.paramPtr("b", Scalar::U32);
        auto out = b.paramPtr("out", Scalar::U32);
        auto i = b.var(globalIdx(b));
        b.forRange(i, len, gridStride(b), [&] { out[i] = a[i] + bb[i]; });
    }
};

class VecAdd : public Benchmark
{
  public:
    std::string name() const override { return "VecAdd"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned n = size == Size::Small ? 4096 : 262144;
        support::Rng rng(benchSeed(101));
        std::vector<uint32_t> a(n), c(n);
        for (auto &v : a)
            v = rng.next();
        for (auto &v : c)
            v = rng.next();

        ba_ = dev.alloc(n * 4);
        bb_ = dev.alloc(n * 4);
        bo_ = dev.alloc(n * 4);
        dev.write32(ba_, a);
        dev.write32(bb_, c);

        std::vector<uint32_t> expect(n);
        for (unsigned i = 0; i < n; ++i)
            expect[i] = a[i] + c[i];

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = 256;
        p.cfg.gridDim = n / 256;
        p.args = {Arg::integer(static_cast<int32_t>(n)), Arg::buffer(ba_),
                  Arg::buffer(bb_), Arg::buffer(bo_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bo_) == expect;
        };
        return p;
    }

  private:
    VecAddKernel kernel_;
    Buffer ba_, bb_, bo_;
};

// ======================================================== 2. Histogram

struct HistogramKernel : kc::KernelDef
{
    std::string name() const override { return "Histogram"; }

    void
    build(Kb &b) override
    {
        auto len = b.paramI32("len");
        auto in = b.paramPtr("in", Scalar::U8);
        auto out = b.paramPtr("out", Scalar::I32);
        auto bins = b.shared("bins", Scalar::I32, 256);

        auto i = b.var(b.threadIdx());
        b.forRange(i, b.c(256), b.blockDim(), [&] { bins[i] = b.c(0); });
        b.barrier();
        auto j = b.var(globalIdx(b));
        b.forRange(j, len, gridStride(b), [&] {
            b.atomicAdd(b.index(bins, b.asInt(in[j])), b.c(1));
        });
        b.barrier();
        auto k = b.var(b.threadIdx());
        b.forRange(k, b.c(256), b.blockDim(), [&] {
            b.atomicAdd(b.index(out, k), bins[k]);
        });
        b.barrier();
    }
};

class Histogram : public Benchmark
{
  public:
    std::string name() const override { return "Histogram"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned n = size == Size::Small ? 16384 : 262144;
        support::Rng rng(benchSeed(202));
        std::vector<uint8_t> data(n);
        std::vector<uint32_t> expect(256, 0);
        for (auto &v : data) {
            v = static_cast<uint8_t>(rng.nextBounded(256));
            ++expect[v];
        }
        bi_ = dev.alloc(n);
        bo_ = dev.alloc(256 * 4);
        dev.write8(bi_, data);

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = 256;
        p.cfg.gridDim = 8;
        p.args = {Arg::integer(static_cast<int32_t>(n)), Arg::buffer(bi_),
                  Arg::buffer(bo_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bo_) == expect;
        };
        return p;
    }

  private:
    HistogramKernel kernel_;
    Buffer bi_, bo_;
};

// =========================================================== 3. Reduce

struct ReduceKernel : kc::KernelDef
{
    explicit ReduceKernel(unsigned block_dim) : blockDim_(block_dim) {}
    std::string name() const override { return "Reduce"; }

    void
    build(Kb &b) override
    {
        auto len = b.paramI32("len");
        auto in = b.paramPtr("in", Scalar::U32);
        auto out = b.paramPtr("out", Scalar::U32);
        auto partial = b.shared("partial", Scalar::U32, blockDim_);

        auto acc = b.var(b.cu(0));
        auto i = b.var(globalIdx(b));
        b.forRange(i, len, gridStride(b), [&] { acc += in[i]; });
        partial[b.threadIdx()] = acc;
        b.barrier();

        auto s = b.var(b.c(static_cast<int32_t>(blockDim_ / 2)));
        b.while_(static_cast<Val>(s) > b.c(0), [&] {
            b.if_(b.threadIdx() < s, [&] {
                partial[b.threadIdx()] +=
                    partial[b.threadIdx() + s];
            });
            b.barrier();
            s = static_cast<Val>(s) >> b.c(1);
        });
        b.if_((b.threadIdx() == b.c(0)), [&] {
            b.atomicAdd(b.index(out, b.c(0)), partial[0]);
        });
    }

  private:
    unsigned blockDim_;
};

class Reduce : public Benchmark
{
  public:
    std::string name() const override { return "Reduce"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned n = size == Size::Small ? 8192 : 524288;
        support::Rng rng(benchSeed(303));
        std::vector<uint32_t> data(n);
        uint32_t expect = 0;
        for (auto &v : data) {
            v = rng.next();
            expect += v;
        }
        bi_ = dev.alloc(n * 4);
        bo_ = dev.alloc(4);
        dev.write32(bi_, data);

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = 256;
        p.cfg.gridDim = 32;
        p.args = {Arg::integer(static_cast<int32_t>(n)), Arg::buffer(bi_),
                  Arg::buffer(bo_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bo_)[0] == expect;
        };
        return p;
    }

  private:
    ReduceKernel kernel_{256};
    Buffer bi_, bo_;
};

// ============================================================= 4. Scan

/** Block-level inclusive prefix sum (Hillis-Steele, ping-pong buffer). */
struct ScanKernel : kc::KernelDef
{
    explicit ScanKernel(unsigned block_dim) : blockDim_(block_dim) {}
    std::string name() const override { return "Scan"; }

    void
    build(Kb &b) override
    {
        auto in = b.paramPtr("in", Scalar::U32);
        auto out = b.paramPtr("out", Scalar::U32);
        auto buf = b.shared("buf", Scalar::U32, 2 * blockDim_);
        const int32_t bd = static_cast<int32_t>(blockDim_);

        auto base = b.var(b.blockIdx() * b.blockDim());
        buf[b.threadIdx()] = in[static_cast<Val>(base) + b.threadIdx()];
        b.barrier();

        auto pp = b.var(b.c(0));
        auto d = b.var(b.c(1));
        b.while_(static_cast<Val>(d) < b.c(bd), [&] {
            auto src = b.var(static_cast<Val>(pp) * b.c(bd) +
                             b.threadIdx());
            auto v = b.var(buf[src]);
            b.if_(b.threadIdx() >= d, [&] {
                v += buf[static_cast<Val>(src) - static_cast<Val>(d)];
            });
            buf[(b.c(1) - pp) * b.c(bd) + b.threadIdx()] = v;
            b.barrier();
            pp = b.c(1) - pp;
            d = static_cast<Val>(d) << b.c(1);
        });
        out[static_cast<Val>(base) + b.threadIdx()] =
            buf[static_cast<Val>(pp) * b.c(bd) + b.threadIdx()];
    }

  private:
    unsigned blockDim_;
};

class Scan : public Benchmark
{
  public:
    std::string name() const override { return "Scan"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned bd = 256;
        const unsigned segs = size == Size::Small ? 8 : 64;
        const unsigned n = bd * segs;
        support::Rng rng(benchSeed(404));
        std::vector<uint32_t> data(n);
        for (auto &v : data)
            v = rng.nextBounded(1000);
        std::vector<uint32_t> expect(n);
        for (unsigned s = 0; s < segs; ++s) {
            uint32_t acc = 0;
            for (unsigned i = 0; i < bd; ++i) {
                acc += data[s * bd + i];
                expect[s * bd + i] = acc;
            }
        }
        bi_ = dev.alloc(n * 4);
        bo_ = dev.alloc(n * 4);
        dev.write32(bi_, data);

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = bd;
        p.cfg.gridDim = segs;
        p.args = {Arg::buffer(bi_), Arg::buffer(bo_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bo_) == expect;
        };
        return p;
    }

  private:
    ScanKernel kernel_{256};
    Buffer bi_, bo_;
};

// ======================================================== 5. Transpose

/** Tiled transpose through a padded shared-memory tile. */
struct TransposeKernel : kc::KernelDef
{
    TransposeKernel(unsigned tile, unsigned width, unsigned height)
        : tile_(tile), width_(width), height_(height)
    {
    }
    std::string name() const override { return "Transpose"; }

    void
    build(Kb &b) override
    {
        auto in = b.paramPtr("in", Scalar::U32);
        auto out = b.paramPtr("out", Scalar::U32);
        // Padded tile avoids bank conflicts on the transposed read.
        auto tile = b.shared("tile", Scalar::U32, tile_ * (tile_ + 1));

        const int32_t t = static_cast<int32_t>(tile_);
        const unsigned log2t = support::ceilLog2(tile_);
        const unsigned tiles_x = width_ / tile_;
        const unsigned log2tx = support::ceilLog2(tiles_x);

        auto lx = b.var(b.threadIdx() & b.c(t - 1));
        auto ly = b.var(b.threadIdx() >> b.c(static_cast<int32_t>(log2t)));
        auto tx = b.var(b.blockIdx() &
                        b.c(static_cast<int32_t>(tiles_x - 1)));
        auto ty = b.var(b.blockIdx() >>
                        b.c(static_cast<int32_t>(log2tx)));

        auto row = b.var(static_cast<Val>(ty) * b.c(t) + ly);
        auto col = b.var(static_cast<Val>(tx) * b.c(t) + lx);
        tile[static_cast<Val>(ly) * b.c(t + 1) + lx] =
            in[static_cast<Val>(row) *
                   b.c(static_cast<int32_t>(width_)) +
               col];
        b.barrier();

        auto orow = b.var(static_cast<Val>(tx) * b.c(t) + ly);
        auto ocol = b.var(static_cast<Val>(ty) * b.c(t) + lx);
        out[static_cast<Val>(orow) *
                b.c(static_cast<int32_t>(height_)) +
            ocol] = tile[static_cast<Val>(lx) * b.c(t + 1) + ly];
    }

  private:
    unsigned tile_;
    unsigned width_;
    unsigned height_;
};

class Transpose : public Benchmark
{
  public:
    std::string name() const override { return "Transpose"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned tile = 16; // 256-thread blocks
        const unsigned w = size == Size::Small ? 64 : 256;
        kernel_ = std::make_unique<TransposeKernel>(tile, w, w);

        support::Rng rng(benchSeed(505));
        std::vector<uint32_t> data(w * w);
        for (auto &v : data)
            v = rng.next();
        std::vector<uint32_t> expect(w * w);
        for (unsigned y = 0; y < w; ++y)
            for (unsigned x = 0; x < w; ++x)
                expect[x * w + y] = data[y * w + x];

        bi_ = dev.alloc(w * w * 4);
        bo_ = dev.alloc(w * w * 4);
        dev.write32(bi_, data);

        Prepared p;
        p.kernel = kernel_.get();
        p.cfg.blockDim = tile * tile;
        p.cfg.gridDim = (w / tile) * (w / tile);
        p.args = {Arg::buffer(bi_), Arg::buffer(bo_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bo_) == expect;
        };
        return p;
    }

  private:
    std::unique_ptr<TransposeKernel> kernel_;
    Buffer bi_, bo_;
};

// ======================================================= 6. MatVecMul

struct MatVecMulKernel : kc::KernelDef
{
    std::string name() const override { return "MatVecMul"; }

    void
    build(Kb &b) override
    {
        auto rows = b.paramI32("rows");
        auto cols = b.paramI32("cols");
        auto mat = b.paramPtr("mat", Scalar::F32);
        auto vec = b.paramPtr("vec", Scalar::F32);
        auto out = b.paramPtr("out", Scalar::F32);

        auto r = b.var(globalIdx(b));
        b.forRange(r, rows, gridStride(b), [&] {
            auto acc = b.var(b.cf(0.0f));
            auto c = b.var(b.c(0));
            b.forRange(c, cols, b.c(1), [&] {
                acc += mat[static_cast<Val>(r) * cols + c] * vec[c];
            });
            out[r] = acc;
        });
    }
};

class MatVecMul : public Benchmark
{
  public:
    std::string name() const override { return "MatVecMul"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned rows = size == Size::Small ? 256 : 2048;
        const unsigned cols = size == Size::Small ? 64 : 256;
        support::Rng rng(benchSeed(606));
        std::vector<float> mat(rows * cols), vec(cols);
        for (auto &v : mat)
            v = rng.nextFloat();
        for (auto &v : vec)
            v = rng.nextFloat();
        std::vector<float> expect(rows);
        for (unsigned r = 0; r < rows; ++r) {
            float acc = 0.0f;
            for (unsigned c = 0; c < cols; ++c)
                acc += mat[r * cols + c] * vec[c];
            expect[r] = acc;
        }
        bm_ = dev.alloc(rows * cols * 4);
        bv_ = dev.alloc(cols * 4);
        bo_ = dev.alloc(rows * 4);
        dev.writeF32(bm_, mat);
        dev.writeF32(bv_, vec);

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = 256;
        p.cfg.gridDim = rows / 256;
        p.args = {Arg::integer(static_cast<int32_t>(rows)),
                  Arg::integer(static_cast<int32_t>(cols)),
                  Arg::buffer(bm_), Arg::buffer(bv_), Arg::buffer(bo_)};
        p.verify = [this, expect](Device &d) {
            return d.readF32(bo_) == expect;
        };
        return p;
    }

  private:
    MatVecMulKernel kernel_;
    Buffer bm_, bv_, bo_;
};

// =========================================================== 7. MatMul

struct MatMulKernel : kc::KernelDef
{
    explicit MatMulKernel(unsigned n) : n_(n) {}
    std::string name() const override { return "MatMul"; }

    void
    build(Kb &b) override
    {
        auto ma = b.paramPtr("a", Scalar::F32);
        auto mb = b.paramPtr("b", Scalar::F32);
        auto mc = b.paramPtr("c", Scalar::F32);
        const int32_t n = static_cast<int32_t>(n_);
        const int32_t log2n = static_cast<int32_t>(support::ceilLog2(n_));

        auto idx = b.var(globalIdx(b));
        b.forRange(idx, b.c(n * n), gridStride(b), [&] {
            auto row = b.var(static_cast<Val>(idx) >> b.c(log2n));
            auto col = b.var(static_cast<Val>(idx) & b.c(n - 1));
            auto acc = b.var(b.cf(0.0f));
            auto k = b.var(b.c(0));
            b.forRange(k, b.c(n), b.c(1), [&] {
                acc += ma[static_cast<Val>(row) * b.c(n) + k] *
                       mb[static_cast<Val>(k) * b.c(n) + col];
            });
            mc[idx] = acc;
        });
    }

  private:
    unsigned n_;
};

class MatMul : public Benchmark
{
  public:
    std::string name() const override { return "MatMul"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned n = size == Size::Small ? 32 : 128;
        kernel_ = std::make_unique<MatMulKernel>(n);
        support::Rng rng(benchSeed(707));
        std::vector<float> a(n * n), c(n * n);
        for (auto &v : a)
            v = rng.nextFloat();
        for (auto &v : c)
            v = rng.nextFloat();
        std::vector<float> expect(n * n);
        for (unsigned r = 0; r < n; ++r) {
            for (unsigned col = 0; col < n; ++col) {
                float acc = 0.0f;
                for (unsigned k = 0; k < n; ++k)
                    acc += a[r * n + k] * c[k * n + col];
                expect[r * n + col] = acc;
            }
        }
        ba_ = dev.alloc(n * n * 4);
        bb_ = dev.alloc(n * n * 4);
        bc_ = dev.alloc(n * n * 4);
        dev.writeF32(ba_, a);
        dev.writeF32(bb_, c);

        Prepared p;
        p.kernel = kernel_.get();
        p.cfg.blockDim = 256;
        p.cfg.gridDim = std::max(1u, n * n / 256);
        p.args = {Arg::buffer(ba_), Arg::buffer(bb_), Arg::buffer(bc_)};
        p.verify = [this, expect](Device &d) {
            return d.readF32(bc_) == expect;
        };
        return p;
    }

  private:
    std::unique_ptr<MatMulKernel> kernel_;
    Buffer ba_, bb_, bc_;
};

// ======================================================== 8. BitonicSm

/** Bitonic sort of blockDim-element segments in shared memory. */
struct BitonicSmKernel : kc::KernelDef
{
    explicit BitonicSmKernel(unsigned block_dim) : blockDim_(block_dim) {}
    std::string name() const override { return "BitonicSm"; }

    void
    build(Kb &b) override
    {
        auto data = b.paramPtr("data", Scalar::U32);
        auto sdata = b.shared("sdata", Scalar::U32, blockDim_);
        const int32_t bd = static_cast<int32_t>(blockDim_);

        auto g = b.var(globalIdx(b));
        sdata[b.threadIdx()] = data[g];
        b.barrier();

        auto k = b.var(b.c(2));
        b.while_(static_cast<Val>(k) <= b.c(bd), [&] {
            auto j = b.var(static_cast<Val>(k) >> b.c(1));
            b.while_(static_cast<Val>(j) > b.c(0), [&] {
                auto ixj = b.var(b.threadIdx() ^ j);
                auto va = b.var(sdata[b.threadIdx()]);
                auto vb = b.var(sdata[ixj]);
                // Ascending iff bit k of tid clear; this thread keeps the
                // min iff it is the lower index of the pair.
                auto asc =
                    b.var((b.threadIdx() & k) == b.c(0));
                auto lower =
                    b.var((b.threadIdx() & j) == b.c(0));
                auto keep_min = b.var(static_cast<Val>(asc) ==
                                      static_cast<Val>(lower));
                auto v = b.var(b.select(keep_min, b.min_(va, vb),
                                        b.max_(va, vb)));
                b.barrier();
                sdata[b.threadIdx()] = v;
                b.barrier();
                j = static_cast<Val>(j) >> b.c(1);
            });
            k = static_cast<Val>(k) << b.c(1);
        });
        data[g] = sdata[b.threadIdx()];
    }

  private:
    unsigned blockDim_;
};

class BitonicSm : public Benchmark
{
  public:
    std::string name() const override { return "BitonicSm"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned bd = 256;
        const unsigned segs = size == Size::Small ? 4 : 64;
        const unsigned n = bd * segs;
        support::Rng rng(benchSeed(808));
        std::vector<uint32_t> data(n);
        for (auto &v : data)
            v = rng.next();
        std::vector<uint32_t> expect = data;
        for (unsigned s = 0; s < segs; ++s)
            std::sort(expect.begin() + s * bd,
                      expect.begin() + (s + 1) * bd);
        bd_ = dev.alloc(n * 4);
        dev.write32(bd_, data);

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = bd;
        p.cfg.gridDim = segs;
        p.args = {Arg::buffer(bd_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bd_) == expect;
        };
        return p;
    }

  private:
    BitonicSmKernel kernel_{256};
    Buffer bd_;
};

// ======================================================== 9. BitonicLa

/** Bitonic sort of large segments directly in global memory. */
struct BitonicLaKernel : kc::KernelDef
{
    std::string name() const override { return "BitonicLa"; }

    void
    build(Kb &b) override
    {
        auto seglen = b.paramI32("seglen");
        auto data = b.paramPtr("data", Scalar::U32);

        auto base = b.var(b.blockIdx() * seglen);
        auto k = b.var(b.c(2));
        b.while_(static_cast<Val>(k) <= seglen, [&] {
            auto j = b.var(static_cast<Val>(k) >> b.c(1));
            b.while_(static_cast<Val>(j) > b.c(0), [&] {
                // Each thread handles elements tid, tid+blockDim, ...
                auto i = b.var(b.threadIdx());
                b.forRange(i, seglen, b.blockDim(), [&] {
                    auto ixj = b.var(static_cast<Val>(i) ^ j);
                    b.if_(static_cast<Val>(ixj) > i, [&] {
                        auto va = b.var(data[static_cast<Val>(base) + i]);
                        auto vb = b.var(
                            data[static_cast<Val>(base) + ixj]);
                        auto asc = b.var((static_cast<Val>(i) & k) ==
                                         b.c(0));
                        auto swap =
                            b.var(b.select(asc, vb < va, va < vb));
                        b.if_(swap, [&] {
                            data[static_cast<Val>(base) + i] = vb;
                            data[static_cast<Val>(base) + ixj] = va;
                        });
                    });
                });
                b.barrier();
                j = static_cast<Val>(j) >> b.c(1);
            });
            k = static_cast<Val>(k) << b.c(1);
        });
    }
};

class BitonicLa : public Benchmark
{
  public:
    std::string name() const override { return "BitonicLa"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        // One block spans the whole SM; segments live in global memory.
        const unsigned bd = dev.sm().config().numThreads();
        const unsigned seglen = size == Size::Small ? bd * 2 : bd * 4;
        const unsigned segs = size == Size::Small ? 2 : 4;
        const unsigned n = seglen * segs;
        support::Rng rng(benchSeed(909));
        std::vector<uint32_t> data(n);
        for (auto &v : data)
            v = rng.next();
        std::vector<uint32_t> expect = data;
        for (unsigned s = 0; s < segs; ++s)
            std::sort(expect.begin() + s * seglen,
                      expect.begin() + (s + 1) * seglen);
        bd_ = dev.alloc(n * 4);
        dev.write32(bd_, data);

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = bd;
        p.cfg.gridDim = segs;
        p.args = {Arg::integer(static_cast<int32_t>(seglen)),
                  Arg::buffer(bd_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bd_) == expect;
        };
        return p;
    }

  private:
    BitonicLaKernel kernel_;
    Buffer bd_;
};

// ============================================================ 10. SPMV

struct SpmvKernel : kc::KernelDef
{
    std::string name() const override { return "SPMV"; }

    void
    build(Kb &b) override
    {
        auto rows = b.paramI32("rows");
        auto rowptr = b.paramPtr("rowptr", Scalar::I32);
        auto colidx = b.paramPtr("colidx", Scalar::I32);
        auto vals = b.paramPtr("vals", Scalar::F32);
        auto x = b.paramPtr("x", Scalar::F32);
        auto y = b.paramPtr("y", Scalar::F32);

        auto r = b.var(globalIdx(b));
        b.forRange(r, rows, gridStride(b), [&] {
            auto acc = b.var(b.cf(0.0f));
            auto e = b.var(rowptr[r]);
            b.forRange(e, rowptr[static_cast<Val>(r) + b.c(1)], b.c(1),
                       [&] { acc += vals[e] * x[colidx[e]]; });
            y[r] = acc;
        });
    }
};

class Spmv : public Benchmark
{
  public:
    std::string name() const override { return "SPMV"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned rows = size == Size::Small ? 256 : 2048;
        const unsigned avg_nnz = size == Size::Small ? 8 : 16;
        support::Rng rng(benchSeed(1010));

        std::vector<uint32_t> rowptr(rows + 1, 0);
        std::vector<uint32_t> colidx;
        std::vector<float> vals;
        for (unsigned r = 0; r < rows; ++r) {
            const unsigned nnz = 1 + rng.nextBounded(2 * avg_nnz - 1);
            rowptr[r + 1] = rowptr[r] + nnz;
            for (unsigned e = 0; e < nnz; ++e) {
                colidx.push_back(rng.nextBounded(rows));
                vals.push_back(rng.nextFloat());
            }
        }
        std::vector<float> x(rows);
        for (auto &v : x)
            v = rng.nextFloat();
        std::vector<float> expect(rows);
        for (unsigned r = 0; r < rows; ++r) {
            float acc = 0.0f;
            for (uint32_t e = rowptr[r]; e < rowptr[r + 1]; ++e)
                acc += vals[e] * x[colidx[e]];
            expect[r] = acc;
        }

        brp_ = dev.alloc((rows + 1) * 4);
        bci_ = dev.alloc(static_cast<uint32_t>(colidx.size() * 4));
        bva_ = dev.alloc(static_cast<uint32_t>(vals.size() * 4));
        bx_ = dev.alloc(rows * 4);
        by_ = dev.alloc(rows * 4);
        dev.write32(brp_, rowptr);
        dev.write32(bci_, colidx);
        dev.writeF32(bva_, vals);
        dev.writeF32(bx_, x);

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = 256;
        p.cfg.gridDim = rows / 256;
        p.args = {Arg::integer(static_cast<int32_t>(rows)),
                  Arg::buffer(brp_), Arg::buffer(bci_), Arg::buffer(bva_),
                  Arg::buffer(bx_), Arg::buffer(by_)};
        p.verify = [this, expect](Device &d) {
            return d.readF32(by_) == expect;
        };
        return p;
    }

  private:
    SpmvKernel kernel_;
    Buffer brp_, bci_, bva_, bx_, by_;
};

// ====================================================== 11. BlkStencil

/**
 * Block-based 3-point stencil: interior neighbours come from a shared
 * tile, halo neighbours from global memory. The left/right neighbour
 * pointers are selected between a shared-memory and a global-memory
 * pointer and parked in a stack pointer array -- the exact pattern that
 * causes capability-metadata divergence and CSC/CLC traffic in the
 * paper's analysis of this benchmark.
 */
struct BlkStencilKernel : kc::KernelDef
{
    explicit BlkStencilKernel(unsigned block_dim) : blockDim_(block_dim) {}
    std::string name() const override { return "BlkStencil"; }

    void
    build(Kb &b) override
    {
        auto len = b.paramI32("len");
        auto in = b.paramPtr("in", Scalar::I32);
        auto out = b.paramPtr("out", Scalar::I32);
        auto tile = b.shared("tile", Scalar::I32, blockDim_);
        auto nbrs = b.localPtrArray(Scalar::I32, 2);

        auto gi = b.var(globalIdx(b));
        tile[b.threadIdx()] = in[gi];
        b.barrier();

        b.ifElse(
            ((static_cast<Val>(gi) > b.c(0)) &
             (static_cast<Val>(gi) < (len - 1))) == b.c(1),
            [&] {
                // Interior: neighbours from the tile where possible,
                // from global memory at tile boundaries.
                auto left = b.select(
                    b.threadIdx() > b.c(0),
                    b.index(tile, b.threadIdx() - 1),
                    b.index(in, static_cast<Val>(gi) - b.c(1)));
                auto right = b.select(
                    b.threadIdx() < (b.blockDim() - 1),
                    b.index(tile, b.threadIdx() + 1),
                    b.index(in, static_cast<Val>(gi) + b.c(1)));
                nbrs[0] = left;   // capability stores (CSC)
                nbrs[1] = right;
                auto lp = b.var(b.load(b.index(nbrs, b.c(0))));
                auto rp = b.var(b.load(b.index(nbrs, b.c(1))));
                out[gi] = (b.load(lp) + tile[b.threadIdx()] +
                           b.load(rp)) /
                          b.c(3);
            },
            [&] { out[gi] = tile[b.threadIdx()]; });
    }

  private:
    unsigned blockDim_;
};

class BlkStencil : public Benchmark
{
  public:
    std::string name() const override { return "BlkStencil"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned n = size == Size::Small ? 8192 : 262144;
        support::Rng rng(benchSeed(1111));
        std::vector<uint32_t> data(n);
        for (auto &v : data)
            v = rng.nextBounded(1 << 20);
        std::vector<uint32_t> expect(n);
        for (unsigned i = 0; i < n; ++i) {
            if (i == 0 || i == n - 1) {
                expect[i] = data[i];
            } else {
                const int64_t sum = static_cast<int64_t>(data[i - 1]) +
                                    data[i] + data[i + 1];
                expect[i] = static_cast<uint32_t>(sum / 3);
            }
        }
        bi_ = dev.alloc(n * 4);
        bo_ = dev.alloc(n * 4);
        dev.write32(bi_, data);

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = 256;
        p.cfg.gridDim = n / 256;
        p.args = {Arg::integer(static_cast<int32_t>(n)), Arg::buffer(bi_),
                  Arg::buffer(bo_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bo_) == expect;
        };
        return p;
    }

  private:
    BlkStencilKernel kernel_{256};
    Buffer bi_, bo_;
};

// ====================================================== 12. StrStencil

/** Stripe-based stencil: each thread sweeps a contiguous stripe. */
struct StrStencilKernel : kc::KernelDef
{
    explicit StrStencilKernel(unsigned stripe) : stripe_(stripe) {}
    std::string name() const override { return "StrStencil"; }

    void
    build(Kb &b) override
    {
        auto len = b.paramI32("len");
        auto in = b.paramPtr("in", Scalar::I32);
        auto out = b.paramPtr("out", Scalar::I32);
        const int32_t stripe = static_cast<int32_t>(stripe_);

        auto start = b.var(globalIdx(b) * b.c(stripe));
        auto i = b.var(static_cast<Val>(start));
        b.forRange(i, static_cast<Val>(start) + b.c(stripe), b.c(1), [&] {
            b.ifElse(
                ((static_cast<Val>(i) > b.c(0)) &
                 (static_cast<Val>(i) < (len - 1))) == b.c(1),
                [&] {
                    out[i] = (in[static_cast<Val>(i) - b.c(1)] + in[i] +
                              in[static_cast<Val>(i) + b.c(1)]) /
                             b.c(3);
                },
                [&] { out[i] = in[i]; });
        });
    }

  private:
    unsigned stripe_;
};

class StrStencil : public Benchmark
{
  public:
    std::string name() const override { return "StrStencil"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned stripe = size == Size::Small ? 4 : 128;
        const unsigned threads = 256 * 8;
        const unsigned n = stripe * threads;
        kernel_ = std::make_unique<StrStencilKernel>(stripe);

        support::Rng rng(benchSeed(1212));
        std::vector<uint32_t> data(n);
        for (auto &v : data)
            v = rng.nextBounded(1 << 20);
        std::vector<uint32_t> expect(n);
        for (unsigned i = 0; i < n; ++i) {
            if (i == 0 || i == n - 1) {
                expect[i] = data[i];
            } else {
                const int64_t sum = static_cast<int64_t>(data[i - 1]) +
                                    data[i] + data[i + 1];
                expect[i] = static_cast<uint32_t>(sum / 3);
            }
        }
        bi_ = dev.alloc(n * 4);
        bo_ = dev.alloc(n * 4);
        dev.write32(bi_, data);

        Prepared p;
        p.kernel = kernel_.get();
        p.cfg.blockDim = 256;
        p.cfg.gridDim = 8;
        p.args = {Arg::integer(static_cast<int32_t>(n)), Arg::buffer(bi_),
                  Arg::buffer(bo_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bo_) == expect;
        };
        return p;
    }

  private:
    std::unique_ptr<StrStencilKernel> kernel_;
    Buffer bi_, bo_;
};

// ========================================================== 13. VecGCD

struct VecGcdKernel : kc::KernelDef
{
    std::string name() const override { return "VecGCD"; }

    void
    build(Kb &b) override
    {
        auto len = b.paramI32("len");
        auto ina = b.paramPtr("a", Scalar::U32);
        auto inb = b.paramPtr("b", Scalar::U32);
        auto out = b.paramPtr("out", Scalar::U32);

        auto i = b.var(globalIdx(b));
        b.forRange(i, len, gridStride(b), [&] {
            auto x = b.var(b.asUint(ina[i]));
            auto y = b.var(b.asUint(inb[i]));
            b.while_(static_cast<Val>(y) != b.cu(0), [&] {
                auto t = b.var(static_cast<Val>(x) % static_cast<Val>(y));
                x = y;
                y = t;
            });
            out[i] = x;
        });
    }
};

class VecGcd : public Benchmark
{
  public:
    std::string name() const override { return "VecGCD"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned n = size == Size::Small ? 4096 : 65536;
        support::Rng rng(benchSeed(1313));
        std::vector<uint32_t> a(n), c(n), expect(n);
        for (unsigned i = 0; i < n; ++i) {
            const uint32_t f = 1 + rng.nextBounded(1000);
            a[i] = f * (1 + rng.nextBounded(5000));
            c[i] = f * (1 + rng.nextBounded(5000));
            uint32_t x = a[i], y = c[i];
            while (y != 0) {
                const uint32_t t = x % y;
                x = y;
                y = t;
            }
            expect[i] = x;
        }
        ba_ = dev.alloc(n * 4);
        bb_ = dev.alloc(n * 4);
        bo_ = dev.alloc(n * 4);
        dev.write32(ba_, a);
        dev.write32(bb_, c);

        Prepared p;
        p.kernel = &kernel_;
        p.cfg.blockDim = 256;
        p.cfg.gridDim = n / 256 / 4;
        p.args = {Arg::integer(static_cast<int32_t>(n)), Arg::buffer(ba_),
                  Arg::buffer(bb_), Arg::buffer(bo_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bo_) == expect;
        };
        return p;
    }

  private:
    VecGcdKernel kernel_;
    Buffer ba_, bb_, bo_;
};

// ======================================================= 14. MotionEst

/**
 * Motion estimation: one thread per (macroblock, candidate offset) pair
 * computes the 8x8 SAD and atomically minimises a packed
 * (SAD << 8 | candidate) per macroblock.
 */
struct MotionEstKernel : kc::KernelDef
{
    explicit MotionEstKernel(unsigned width) : width_(width) {}
    std::string name() const override { return "MotionEst"; }

    void
    build(Kb &b) override
    {
        auto cur = b.paramPtr("cur", Scalar::U8);
        auto ref = b.paramPtr("ref", Scalar::U8);
        auto best = b.paramPtr("best", Scalar::I32);

        const int32_t w = static_cast<int32_t>(width_);
        const int32_t log2w =
            static_cast<int32_t>(support::ceilLog2(width_));
        const unsigned mbw = width_ / 8;
        const int32_t log2mbw =
            static_cast<int32_t>(support::ceilLog2(mbw));
        const int32_t work =
            static_cast<int32_t>(mbw * mbw * 64); // 64 candidates per MB

        auto idx = b.var(globalIdx(b));
        b.forRange(idx, b.c(work), gridStride(b), [&] {
            auto mb = b.var(static_cast<Val>(idx) >> b.c(6));
            auto cand = b.var(static_cast<Val>(idx) & b.c(63));
            auto dx = b.var((static_cast<Val>(cand) & b.c(7)) - b.c(4));
            auto dy = b.var((static_cast<Val>(cand) >> b.c(3)) - b.c(4));
            auto mbx = b.var((static_cast<Val>(mb) &
                              b.c(static_cast<int32_t>(mbw - 1)))
                             << b.c(3));
            auto mby =
                b.var((static_cast<Val>(mb) >> b.c(log2mbw)) << b.c(3));

            auto sad = b.var(b.c(0));
            auto yy = b.var(b.c(0));
            b.forRange(yy, b.c(8), b.c(1), [&] {
                auto xx = b.var(b.c(0));
                b.forRange(xx, b.c(8), b.c(1), [&] {
                    auto rx = b.var(b.min_(
                        b.max_(static_cast<Val>(mbx) + xx +
                                   static_cast<Val>(dx),
                               b.c(0)),
                        b.c(w - 1)));
                    auto ry = b.var(b.min_(
                        b.max_(static_cast<Val>(mby) + yy +
                                   static_cast<Val>(dy),
                               b.c(0)),
                        b.c(w - 1)));
                    auto d = b.var(
                        b.asInt(cur[((static_cast<Val>(mby) + yy)
                                     << b.c(log2w)) +
                                    mbx + xx]) -
                        b.asInt(
                            ref[(static_cast<Val>(ry) << b.c(log2w)) +
                                rx]));
                    sad += (static_cast<Val>(d) ^
                            (static_cast<Val>(d) >> b.c(31))) -
                           (static_cast<Val>(d) >> b.c(31));
                });
            });
            b.atomic(kc::AtomicOp::Min, b.index(best, mb),
                     (static_cast<Val>(sad) << b.c(8)) | cand);
        });
    }

  private:
    unsigned width_;
};

class MotionEst : public Benchmark
{
  public:
    std::string name() const override { return "MotionEst"; }

    Prepared
    prepare(Device &dev, Size size) override
    {
        const unsigned w = size == Size::Small ? 32 : 64;
        kernel_ = std::make_unique<MotionEstKernel>(w);
        const unsigned mbw = w / 8;
        const unsigned nmb = mbw * mbw;

        support::Rng rng(benchSeed(1414));
        std::vector<uint8_t> cur(w * w), ref(w * w);
        for (auto &v : cur)
            v = static_cast<uint8_t>(rng.nextBounded(256));
        for (auto &v : ref)
            v = static_cast<uint8_t>(rng.nextBounded(256));

        std::vector<uint32_t> expect(nmb, 0x7fffffff);
        for (unsigned mb = 0; mb < nmb; ++mb) {
            const int mbx = static_cast<int>(mb % mbw) * 8;
            const int mby = static_cast<int>(mb / mbw) * 8;
            for (unsigned cand = 0; cand < 64; ++cand) {
                const int dx = static_cast<int>(cand & 7) - 4;
                const int dy = static_cast<int>(cand >> 3) - 4;
                int sad = 0;
                for (int yy = 0; yy < 8; ++yy) {
                    for (int xx = 0; xx < 8; ++xx) {
                        const int cx = mbx + xx;
                        const int cy = mby + yy;
                        const int rx = std::clamp(
                            cx + dx, 0, static_cast<int>(w) - 1);
                        const int ry = std::clamp(
                            cy + dy, 0, static_cast<int>(w) - 1);
                        sad += std::abs(
                            static_cast<int>(cur[cy * w + cx]) -
                            static_cast<int>(ref[ry * w + rx]));
                    }
                }
                const uint32_t packed =
                    (static_cast<uint32_t>(sad) << 8) | cand;
                expect[mb] = std::min(expect[mb], packed);
            }
        }

        bc_ = dev.alloc(w * w);
        br_ = dev.alloc(w * w);
        bb_ = dev.alloc(nmb * 4);
        dev.write8(bc_, cur);
        dev.write8(br_, ref);
        dev.write32(bb_, std::vector<uint32_t>(nmb, 0x7fffffff));

        Prepared p;
        p.kernel = kernel_.get();
        p.cfg.blockDim = 256;
        p.cfg.gridDim = std::max(1u, nmb * 64 / 256);
        p.args = {Arg::buffer(bc_), Arg::buffer(br_), Arg::buffer(bb_)};
        p.verify = [this, expect](Device &d) {
            return d.read32(bb_) == expect;
        };
        return p;
    }

  private:
    std::unique_ptr<MotionEstKernel> kernel_;
    Buffer bc_, br_, bb_;
};

} // namespace

std::vector<std::unique_ptr<Benchmark>>
makeSuite()
{
    std::vector<std::unique_ptr<Benchmark>> suite;
    suite.push_back(std::make_unique<VecAdd>());
    suite.push_back(std::make_unique<Histogram>());
    suite.push_back(std::make_unique<Reduce>());
    suite.push_back(std::make_unique<Scan>());
    suite.push_back(std::make_unique<Transpose>());
    suite.push_back(std::make_unique<MatVecMul>());
    suite.push_back(std::make_unique<MatMul>());
    suite.push_back(std::make_unique<BitonicSm>());
    suite.push_back(std::make_unique<BitonicLa>());
    suite.push_back(std::make_unique<Spmv>());
    suite.push_back(std::make_unique<BlkStencil>());
    suite.push_back(std::make_unique<StrStencil>());
    suite.push_back(std::make_unique<VecGcd>());
    suite.push_back(std::make_unique<MotionEst>());
    return suite;
}

std::unique_ptr<Benchmark>
makeBenchmark(const std::string &name)
{
    auto suite = makeSuite();
    for (auto &b : suite) {
        if (b->name() == name)
            return std::move(b);
    }
    return nullptr;
}

void
setWorkloadSeed(uint64_t seed)
{
    g_workload_seed.store(seed, std::memory_order_relaxed);
}

uint64_t
workloadSeed()
{
    return g_workload_seed.load(std::memory_order_relaxed);
}

} // namespace kernels
