#include "isa/encoding.hpp"

#include "support/bits.hpp"
#include "support/logging.hpp"

namespace isa
{

namespace
{

using support::bits;
using support::signExtend32;

// Major opcodes.
constexpr uint32_t OPC_LOAD = 0x03;
constexpr uint32_t OPC_STORE = 0x23;
constexpr uint32_t OPC_OP_IMM = 0x13;
constexpr uint32_t OPC_OP = 0x33;
constexpr uint32_t OPC_LUI = 0x37;
constexpr uint32_t OPC_AUIPC = 0x17;
constexpr uint32_t OPC_JAL = 0x6f;
constexpr uint32_t OPC_JALR = 0x67;
constexpr uint32_t OPC_BRANCH = 0x63;
constexpr uint32_t OPC_AMO = 0x2f;
constexpr uint32_t OPC_FP = 0x53;
constexpr uint32_t OPC_SYSTEM = 0x73;
constexpr uint32_t OPC_CUSTOM0 = 0x0b;
constexpr uint32_t OPC_CHERI = 0x5b;

// CHERI one-source selector values (rs2 field under funct7 0x7f).
constexpr uint32_t SEL_CGETPERM = 0x00;
constexpr uint32_t SEL_CGETTYPE = 0x01;
constexpr uint32_t SEL_CGETBASE = 0x02;
constexpr uint32_t SEL_CGETLEN = 0x03;
constexpr uint32_t SEL_CGETTAG = 0x04;
constexpr uint32_t SEL_CGETSEALED = 0x05;
constexpr uint32_t SEL_CGETFLAGS = 0x07;
constexpr uint32_t SEL_CRRL = 0x08;
constexpr uint32_t SEL_CRAM = 0x09;
constexpr uint32_t SEL_CMOVE = 0x0a;
constexpr uint32_t SEL_CCLEARTAG = 0x0b;
constexpr uint32_t SEL_CJALR = 0x0c;
constexpr uint32_t SEL_CGETADDR = 0x0f;
constexpr uint32_t SEL_CSEALENTRY = 0x11;

// CHERI two-source funct7 values.
constexpr uint32_t F7_CSPECIALRW = 0x01;
constexpr uint32_t F7_CSETBOUNDS = 0x08;
constexpr uint32_t F7_CSETBOUNDSEXACT = 0x09;
constexpr uint32_t F7_CANDPERM = 0x0d;
constexpr uint32_t F7_CSETFLAGS = 0x0e;
constexpr uint32_t F7_CSETADDR = 0x10;
constexpr uint32_t F7_CINCOFFSET = 0x11;
constexpr uint32_t F7_ONE_SOURCE = 0x7f;

uint32_t
encR(uint32_t opc, uint32_t f3, uint32_t f7, uint32_t rd, uint32_t rs1,
     uint32_t rs2)
{
    return opc | (rd << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) |
           (f7 << 25);
}

uint32_t
encI(uint32_t opc, uint32_t f3, uint32_t rd, uint32_t rs1, int32_t imm)
{
    return opc | (rd << 7) | (f3 << 12) | (rs1 << 15) |
           ((static_cast<uint32_t>(imm) & 0xfff) << 20);
}

uint32_t
encS(uint32_t opc, uint32_t f3, uint32_t rs1, uint32_t rs2, int32_t imm)
{
    const uint32_t u = static_cast<uint32_t>(imm);
    return opc | ((u & 0x1f) << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) |
           (((u >> 5) & 0x7f) << 25);
}

uint32_t
encB(uint32_t opc, uint32_t f3, uint32_t rs1, uint32_t rs2, int32_t imm)
{
    const uint32_t u = static_cast<uint32_t>(imm);
    return opc | (((u >> 11) & 1) << 7) | (((u >> 1) & 0xf) << 8) |
           (f3 << 12) | (rs1 << 15) | (rs2 << 20) | (((u >> 5) & 0x3f) << 25) |
           (((u >> 12) & 1) << 31);
}

uint32_t
encU(uint32_t opc, uint32_t rd, int32_t imm)
{
    return opc | (rd << 7) | (static_cast<uint32_t>(imm) & 0xfffff000u);
}

uint32_t
encJ(uint32_t opc, uint32_t rd, int32_t imm)
{
    const uint32_t u = static_cast<uint32_t>(imm);
    return opc | (rd << 7) | (((u >> 12) & 0xff) << 12) |
           (((u >> 11) & 1) << 20) | (((u >> 1) & 0x3ff) << 21) |
           (((u >> 20) & 1) << 31);
}

int32_t
immI(uint32_t w)
{
    return signExtend32(w >> 20, 12);
}

int32_t
immS(uint32_t w)
{
    return signExtend32((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12);
}

int32_t
immB(uint32_t w)
{
    const uint32_t u = (bits(w, 31, 31) << 12) | (bits(w, 7, 7) << 11) |
                       (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1);
    return signExtend32(u, 13);
}

int32_t
immU(uint32_t w)
{
    return static_cast<int32_t>(w & 0xfffff000u);
}

int32_t
immJ(uint32_t w)
{
    const uint32_t u = (bits(w, 31, 31) << 20) | (bits(w, 19, 12) << 12) |
                       (bits(w, 20, 20) << 11) | (bits(w, 30, 21) << 1);
    return signExtend32(u, 21);
}

struct RSpec
{
    Op op;
    uint32_t f3;
    uint32_t f7;
};

constexpr RSpec kOpSpecs[] = {
    {Op::ADD, 0, 0x00}, {Op::SLL, 1, 0x00}, {Op::SLT, 2, 0x00},
    {Op::SLTU, 3, 0x00}, {Op::XOR, 4, 0x00}, {Op::SRL, 5, 0x00},
    {Op::OR, 6, 0x00}, {Op::AND, 7, 0x00}, {Op::SUB, 0, 0x20},
    {Op::SRA, 5, 0x20}, {Op::MUL, 0, 0x01}, {Op::MULH, 1, 0x01},
    {Op::MULHSU, 2, 0x01}, {Op::MULHU, 3, 0x01}, {Op::DIV, 4, 0x01},
    {Op::DIVU, 5, 0x01}, {Op::REM, 6, 0x01}, {Op::REMU, 7, 0x01},
};

struct AmoSpec
{
    Op op;
    uint32_t f5;
};

constexpr AmoSpec kAmoSpecs[] = {
    {Op::AMOADD_W, 0x00}, {Op::AMOSWAP_W, 0x01}, {Op::AMOXOR_W, 0x04},
    {Op::AMOAND_W, 0x0c}, {Op::AMOOR_W, 0x08},   {Op::AMOMIN_W, 0x10},
    {Op::AMOMAX_W, 0x14}, {Op::AMOMINU_W, 0x18}, {Op::AMOMAXU_W, 0x1c},
};

struct CheriTwoSpec
{
    Op op;
    uint32_t f7;
};

constexpr CheriTwoSpec kCheriTwoSpecs[] = {
    {Op::CSPECIALRW, F7_CSPECIALRW},
    {Op::CSETBOUNDS, F7_CSETBOUNDS},
    {Op::CSETBOUNDSEXACT, F7_CSETBOUNDSEXACT},
    {Op::CANDPERM, F7_CANDPERM},
    {Op::CSETFLAGS, F7_CSETFLAGS},
    {Op::CSETADDR, F7_CSETADDR},
    {Op::CINCOFFSET, F7_CINCOFFSET},
};

struct CheriOneSpec
{
    Op op;
    uint32_t sel;
};

constexpr CheriOneSpec kCheriOneSpecs[] = {
    {Op::CGETPERM, SEL_CGETPERM},   {Op::CGETTYPE, SEL_CGETTYPE},
    {Op::CGETBASE, SEL_CGETBASE},   {Op::CGETLEN, SEL_CGETLEN},
    {Op::CGETTAG, SEL_CGETTAG},     {Op::CGETSEALED, SEL_CGETSEALED},
    {Op::CGETFLAGS, SEL_CGETFLAGS}, {Op::CRRL, SEL_CRRL},
    {Op::CRAM, SEL_CRAM},           {Op::CMOVE, SEL_CMOVE},
    {Op::CCLEARTAG, SEL_CCLEARTAG}, {Op::CJALR_CAP, SEL_CJALR},
    {Op::CGETADDR, SEL_CGETADDR},   {Op::CSEALENTRY, SEL_CSEALENTRY},
};

} // namespace

uint32_t
encode(const Instr &i)
{
    const uint32_t rd = i.rd, rs1 = i.rs1, rs2 = i.rs2;
    switch (i.op) {
      case Op::LUI:
        return encU(OPC_LUI, rd, i.imm);
      case Op::AUIPC:
        return encU(OPC_AUIPC, rd, i.imm);
      case Op::JAL:
        return encJ(OPC_JAL, rd, i.imm);
      case Op::JALR:
        return encI(OPC_JALR, 0, rd, rs1, i.imm);
      case Op::BEQ:
        return encB(OPC_BRANCH, 0, rs1, rs2, i.imm);
      case Op::BNE:
        return encB(OPC_BRANCH, 1, rs1, rs2, i.imm);
      case Op::BLT:
        return encB(OPC_BRANCH, 4, rs1, rs2, i.imm);
      case Op::BGE:
        return encB(OPC_BRANCH, 5, rs1, rs2, i.imm);
      case Op::BLTU:
        return encB(OPC_BRANCH, 6, rs1, rs2, i.imm);
      case Op::BGEU:
        return encB(OPC_BRANCH, 7, rs1, rs2, i.imm);
      case Op::LB:
        return encI(OPC_LOAD, 0, rd, rs1, i.imm);
      case Op::LH:
        return encI(OPC_LOAD, 1, rd, rs1, i.imm);
      case Op::LW:
        return encI(OPC_LOAD, 2, rd, rs1, i.imm);
      case Op::CLC:
        return encI(OPC_LOAD, 3, rd, rs1, i.imm);
      case Op::LBU:
        return encI(OPC_LOAD, 4, rd, rs1, i.imm);
      case Op::LHU:
        return encI(OPC_LOAD, 5, rd, rs1, i.imm);
      case Op::SB:
        return encS(OPC_STORE, 0, rs1, rs2, i.imm);
      case Op::SH:
        return encS(OPC_STORE, 1, rs1, rs2, i.imm);
      case Op::SW:
        return encS(OPC_STORE, 2, rs1, rs2, i.imm);
      case Op::CSC:
        return encS(OPC_STORE, 3, rs1, rs2, i.imm);
      case Op::ADDI:
        return encI(OPC_OP_IMM, 0, rd, rs1, i.imm);
      case Op::SLTI:
        return encI(OPC_OP_IMM, 2, rd, rs1, i.imm);
      case Op::SLTIU:
        return encI(OPC_OP_IMM, 3, rd, rs1, i.imm);
      case Op::XORI:
        return encI(OPC_OP_IMM, 4, rd, rs1, i.imm);
      case Op::ORI:
        return encI(OPC_OP_IMM, 6, rd, rs1, i.imm);
      case Op::ANDI:
        return encI(OPC_OP_IMM, 7, rd, rs1, i.imm);
      case Op::SLLI:
        return encR(OPC_OP_IMM, 1, 0x00, rd, rs1, i.imm & 0x1f);
      case Op::SRLI:
        return encR(OPC_OP_IMM, 5, 0x00, rd, rs1, i.imm & 0x1f);
      case Op::SRAI:
        return encR(OPC_OP_IMM, 5, 0x20, rd, rs1, i.imm & 0x1f);
      case Op::CSRRW:
        return encI(OPC_SYSTEM, 1, rd, rs1, i.imm);
      case Op::CSRRS:
        return encI(OPC_SYSTEM, 2, rd, rs1, i.imm);
      case Op::SIMT_PUSH:
        return encI(OPC_CUSTOM0, 0, 0, 0, 0);
      case Op::SIMT_POP:
        return encI(OPC_CUSTOM0, 1, 0, 0, 0);
      case Op::SIMT_BARRIER:
        return encI(OPC_CUSTOM0, 2, 0, 0, 0);
      case Op::SIMT_HALT:
        return encI(OPC_CUSTOM0, 3, 0, 0, 0);
      case Op::SIMT_TRAP:
        return encI(OPC_CUSTOM0, 4, 0, 0, 0);
      case Op::CINCOFFSETIMM:
        return encI(OPC_CHERI, 1, rd, rs1, i.imm);
      case Op::CSETBOUNDSIMM:
        return encI(OPC_CHERI, 2, rd, rs1, i.imm);
      case Op::FADD_S:
        return encR(OPC_FP, 0, 0x00, rd, rs1, rs2);
      case Op::FSUB_S:
        return encR(OPC_FP, 0, 0x04, rd, rs1, rs2);
      case Op::FMUL_S:
        return encR(OPC_FP, 0, 0x08, rd, rs1, rs2);
      case Op::FDIV_S:
        return encR(OPC_FP, 0, 0x0c, rd, rs1, rs2);
      case Op::FSQRT_S:
        return encR(OPC_FP, 0, 0x2c, rd, rs1, 0);
      case Op::FMIN_S:
        return encR(OPC_FP, 0, 0x14, rd, rs1, rs2);
      case Op::FMAX_S:
        return encR(OPC_FP, 1, 0x14, rd, rs1, rs2);
      case Op::FCVT_W_S:
        return encR(OPC_FP, 1, 0x60, rd, rs1, 0);
      case Op::FCVT_WU_S:
        return encR(OPC_FP, 1, 0x60, rd, rs1, 1);
      case Op::FCVT_S_W:
        return encR(OPC_FP, 0, 0x68, rd, rs1, 0);
      case Op::FCVT_S_WU:
        return encR(OPC_FP, 0, 0x68, rd, rs1, 1);
      case Op::FEQ_S:
        return encR(OPC_FP, 2, 0x50, rd, rs1, rs2);
      case Op::FLT_S:
        return encR(OPC_FP, 1, 0x50, rd, rs1, rs2);
      case Op::FLE_S:
        return encR(OPC_FP, 0, 0x50, rd, rs1, rs2);
      default:
        break;
    }

    for (const auto &spec : kOpSpecs) {
        if (spec.op == i.op)
            return encR(OPC_OP, spec.f3, spec.f7, rd, rs1, rs2);
    }
    for (const auto &spec : kAmoSpecs) {
        if (spec.op == i.op)
            return encR(OPC_AMO, 2, spec.f5 << 2, rd, rs1, rs2);
    }
    for (const auto &spec : kCheriTwoSpecs) {
        if (spec.op == i.op) {
            const uint32_t r2 = i.op == Op::CSPECIALRW
                                    ? static_cast<uint32_t>(i.imm) & 0x1f
                                    : rs2;
            return encR(OPC_CHERI, 0, spec.f7, rd, rs1, r2);
        }
    }
    for (const auto &spec : kCheriOneSpecs) {
        if (spec.op == i.op)
            return encR(OPC_CHERI, 0, F7_ONE_SOURCE, rd, rs1, spec.sel);
    }
    panic("cannot encode opcode %d", static_cast<int>(i.op));
}

namespace
{

Instr
decodeImpl(uint32_t w)
{
    Instr i;
    const uint32_t opc = bits(w, 6, 0);
    const uint32_t rd = bits(w, 11, 7);
    const uint32_t f3 = bits(w, 14, 12);
    const uint32_t rs1 = bits(w, 19, 15);
    const uint32_t rs2 = bits(w, 24, 20);
    const uint32_t f7 = bits(w, 31, 25);

    i.rd = static_cast<uint8_t>(rd);
    i.rs1 = static_cast<uint8_t>(rs1);
    i.rs2 = static_cast<uint8_t>(rs2);

    switch (opc) {
      case OPC_LUI:
        i.op = Op::LUI;
        i.imm = immU(w);
        return i;
      case OPC_AUIPC:
        i.op = Op::AUIPC;
        i.imm = immU(w);
        return i;
      case OPC_JAL:
        i.op = Op::JAL;
        i.imm = immJ(w);
        return i;
      case OPC_JALR:
        if (f3 != 0)
            break;
        i.op = Op::JALR;
        i.imm = immI(w);
        return i;
      case OPC_BRANCH: {
        static constexpr Op branch_ops[8] = {Op::BEQ,     Op::BNE,
                                             Op::ILLEGAL, Op::ILLEGAL,
                                             Op::BLT,     Op::BGE,
                                             Op::BLTU,    Op::BGEU};
        i.op = branch_ops[f3];
        i.imm = immB(w);
        return i;
      }
      case OPC_LOAD: {
        static constexpr Op load_ops[8] = {Op::LB,  Op::LH,  Op::LW,
                                           Op::CLC, Op::LBU, Op::LHU,
                                           Op::ILLEGAL, Op::ILLEGAL};
        i.op = load_ops[f3];
        i.imm = immI(w);
        return i;
      }
      case OPC_STORE: {
        static constexpr Op store_ops[8] = {
            Op::SB, Op::SH, Op::SW, Op::CSC,
            Op::ILLEGAL, Op::ILLEGAL, Op::ILLEGAL, Op::ILLEGAL};
        i.op = store_ops[f3];
        i.imm = immS(w);
        return i;
      }
      case OPC_OP_IMM:
        switch (f3) {
          case 0: i.op = Op::ADDI; break;
          case 2: i.op = Op::SLTI; break;
          case 3: i.op = Op::SLTIU; break;
          case 4: i.op = Op::XORI; break;
          case 6: i.op = Op::ORI; break;
          case 7: i.op = Op::ANDI; break;
          case 1:
            i.op = f7 == 0 ? Op::SLLI : Op::ILLEGAL;
            i.imm = static_cast<int32_t>(rs2);
            return i;
          case 5:
            i.op = f7 == 0 ? Op::SRLI : (f7 == 0x20 ? Op::SRAI : Op::ILLEGAL);
            i.imm = static_cast<int32_t>(rs2);
            return i;
          default: break;
        }
        i.imm = immI(w);
        return i;
      case OPC_OP:
        for (const auto &spec : kOpSpecs) {
            if (spec.f3 == f3 && spec.f7 == f7) {
                i.op = spec.op;
                return i;
            }
        }
        break;
      case OPC_AMO:
        if (f3 != 2)
            break;
        for (const auto &spec : kAmoSpecs) {
            if (spec.f5 == (f7 >> 2)) {
                i.op = spec.op;
                return i;
            }
        }
        break;
      case OPC_FP:
        switch (f7) {
          case 0x00: i.op = Op::FADD_S; return i;
          case 0x04: i.op = Op::FSUB_S; return i;
          case 0x08: i.op = Op::FMUL_S; return i;
          case 0x0c: i.op = Op::FDIV_S; return i;
          case 0x2c: i.op = Op::FSQRT_S; return i;
          case 0x14: i.op = f3 == 0 ? Op::FMIN_S : Op::FMAX_S; return i;
          case 0x60: i.op = rs2 == 0 ? Op::FCVT_W_S : Op::FCVT_WU_S; return i;
          case 0x68: i.op = rs2 == 0 ? Op::FCVT_S_W : Op::FCVT_S_WU; return i;
          case 0x50:
            i.op = f3 == 2 ? Op::FEQ_S : (f3 == 1 ? Op::FLT_S : Op::FLE_S);
            return i;
          default: break;
        }
        break;
      case OPC_SYSTEM:
        if (f3 == 1 || f3 == 2) {
            i.op = f3 == 1 ? Op::CSRRW : Op::CSRRS;
            i.imm = static_cast<int32_t>(w >> 20);
            return i;
        }
        break;
      case OPC_CUSTOM0: {
        static constexpr Op simt_ops[8] = {
            Op::SIMT_PUSH, Op::SIMT_POP, Op::SIMT_BARRIER, Op::SIMT_HALT,
            Op::SIMT_TRAP, Op::ILLEGAL, Op::ILLEGAL, Op::ILLEGAL};
        i.op = simt_ops[f3];
        return i;
      }
      case OPC_CHERI:
        if (f3 == 1) {
            i.op = Op::CINCOFFSETIMM;
            i.imm = immI(w);
            return i;
        }
        if (f3 == 2) {
            i.op = Op::CSETBOUNDSIMM;
            // CSetBoundsImm has an unsigned (zero-extended) immediate.
            i.imm = static_cast<int32_t>(w >> 20);
            return i;
        }
        if (f3 != 0)
            break;
        if (f7 == F7_ONE_SOURCE) {
            for (const auto &spec : kCheriOneSpecs) {
                if (spec.sel == rs2) {
                    i.op = spec.op;
                    i.rs2 = 0;
                    return i;
                }
            }
            break;
        }
        for (const auto &spec : kCheriTwoSpecs) {
            if (spec.f7 == f7) {
                i.op = spec.op;
                if (i.op == Op::CSPECIALRW) {
                    i.imm = static_cast<int32_t>(rs2);
                    i.rs2 = 0;
                }
                return i;
            }
        }
        break;
      default:
        break;
    }
    return Instr{}; // Op::ILLEGAL
}

} // namespace

Instr
decode(uint32_t w)
{
    Instr i = decodeImpl(w);
    if (i.op == Op::ILLEGAL)
        return Instr{};
    normalizeOperands(i);
    return i;
}

} // namespace isa
