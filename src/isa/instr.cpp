#include "isa/instr.hpp"

#include "support/logging.hpp"

namespace isa
{

bool
isCheri(Op op)
{
    switch (op) {
      case Op::CSETBOUNDS:
      case Op::CSETBOUNDSEXACT:
      case Op::CSETBOUNDSIMM:
      case Op::CSETADDR:
      case Op::CINCOFFSET:
      case Op::CINCOFFSETIMM:
      case Op::CANDPERM:
      case Op::CSETFLAGS:
      case Op::CSPECIALRW:
      case Op::CGETPERM:
      case Op::CGETTYPE:
      case Op::CGETBASE:
      case Op::CGETLEN:
      case Op::CGETTAG:
      case Op::CGETSEALED:
      case Op::CGETADDR:
      case Op::CGETFLAGS:
      case Op::CMOVE:
      case Op::CCLEARTAG:
      case Op::CSEALENTRY:
      case Op::CRRL:
      case Op::CRAM:
      case Op::CJALR_CAP:
      case Op::CLC:
      case Op::CSC:
        return true;
      default:
        return false;
    }
}

bool
isCheriSlowPath(Op op)
{
    // The instructions the paper moves into the shared function unit
    // (Section 3.3): getting and setting bounds, and the representable-
    // range queries.
    switch (op) {
      case Op::CGETBASE:
      case Op::CGETLEN:
      case Op::CSETBOUNDS:
      case Op::CSETBOUNDSEXACT:
      case Op::CSETBOUNDSIMM:
      case Op::CRRL:
      case Op::CRAM:
        return true;
      default:
        return false;
    }
}

bool
isMemAccess(Op op)
{
    return isLoad(op) || isStore(op) || isAtomic(op);
}

bool
isLoad(Op op)
{
    switch (op) {
      case Op::LB:
      case Op::LH:
      case Op::LW:
      case Op::LBU:
      case Op::LHU:
      case Op::CLC:
        return true;
      default:
        return false;
    }
}

bool
isStore(Op op)
{
    switch (op) {
      case Op::SB:
      case Op::SH:
      case Op::SW:
      case Op::CSC:
        return true;
      default:
        return false;
    }
}

bool
isAtomic(Op op)
{
    switch (op) {
      case Op::AMOADD_W:
      case Op::AMOSWAP_W:
      case Op::AMOAND_W:
      case Op::AMOOR_W:
      case Op::AMOXOR_W:
      case Op::AMOMIN_W:
      case Op::AMOMAX_W:
      case Op::AMOMINU_W:
      case Op::AMOMAXU_W:
        return true;
      default:
        return false;
    }
}

bool
isFpSlowPath(Op op)
{
    return op == Op::FDIV_S || op == Op::FSQRT_S;
}

bool
isScalarisable(Op op)
{
    if (isAtomic(op) || isFpSlowPath(op))
        return false;
    switch (op) {
      case Op::ILLEGAL:
      case Op::CSPECIALRW:      // reads the SCR file per lane, in order
      case Op::CSETBOUNDSEXACT: // traps per lane on inexact bounds
      case Op::SIMT_TRAP:       // traps every active lane
      case Op::CJALR_CAP:       // unimplemented (panics in the per-lane path)
        return false;
      default:
        return true;
    }
}

bool
isBranch(Op op)
{
    switch (op) {
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BGE:
      case Op::BLTU:
      case Op::BGEU:
        return true;
      default:
        return false;
    }
}

bool
isJump(Op op)
{
    return op == Op::JAL || op == Op::JALR || op == Op::CJALR_CAP;
}

unsigned
accessLogWidth(Op op)
{
    switch (op) {
      case Op::LB:
      case Op::LBU:
      case Op::SB:
        return 0;
      case Op::LH:
      case Op::LHU:
      case Op::SH:
        return 1;
      case Op::CLC:
      case Op::CSC:
        return 3;
      default:
        return 2; // words and word atomics
    }
}

bool
usesRd(Op op)
{
    if (isStore(op) || isBranch(op))
        return false;
    switch (op) {
      case Op::SIMT_PUSH:
      case Op::SIMT_POP:
      case Op::SIMT_BARRIER:
      case Op::SIMT_HALT:
      case Op::SIMT_TRAP:
      case Op::ILLEGAL:
        return false;
      default:
        return true;
    }
}

bool
usesRs1(Op op)
{
    switch (op) {
      case Op::LUI:
      case Op::AUIPC:
      case Op::JAL:
      case Op::SIMT_PUSH:
      case Op::SIMT_POP:
      case Op::SIMT_BARRIER:
      case Op::SIMT_HALT:
      case Op::SIMT_TRAP:
      case Op::ILLEGAL:
        return false;
      default:
        return true;
    }
}

bool
usesRs2(Op op)
{
    if (isBranch(op) || isStore(op) || isAtomic(op))
        return true;
    switch (op) {
      case Op::ADD: case Op::SUB: case Op::SLL: case Op::SLT:
      case Op::SLTU: case Op::XOR: case Op::SRL: case Op::SRA:
      case Op::OR: case Op::AND:
      case Op::MUL: case Op::MULH: case Op::MULHSU: case Op::MULHU:
      case Op::DIV: case Op::DIVU: case Op::REM: case Op::REMU:
      case Op::FADD_S: case Op::FSUB_S: case Op::FMUL_S: case Op::FDIV_S:
      case Op::FMIN_S: case Op::FMAX_S:
      case Op::FEQ_S: case Op::FLT_S: case Op::FLE_S:
      case Op::CSETBOUNDS: case Op::CSETBOUNDSEXACT: case Op::CSETADDR:
      case Op::CINCOFFSET: case Op::CANDPERM: case Op::CSETFLAGS:
        return true;
      default:
        return false;
    }
}

void
normalizeOperands(Instr &instr)
{
    if (!usesRd(instr.op))
        instr.rd = 0;
    if (!usesRs1(instr.op))
        instr.rs1 = 0;
    if (!usesRs2(instr.op))
        instr.rs2 = 0;
}

std::string
opName(Op op, bool purecap)
{
    switch (op) {
      case Op::ILLEGAL: return "illegal";
      case Op::LUI: return "lui";
      case Op::AUIPC: return purecap ? "auipcc" : "auipc";
      case Op::JAL: return purecap ? "cjal" : "jal";
      case Op::JALR: return purecap ? "cjalr" : "jalr";
      case Op::BEQ: return "beq";
      case Op::BNE: return "bne";
      case Op::BLT: return "blt";
      case Op::BGE: return "bge";
      case Op::BLTU: return "bltu";
      case Op::BGEU: return "bgeu";
      case Op::LB: return purecap ? "clb" : "lb";
      case Op::LH: return purecap ? "clh" : "lh";
      case Op::LW: return purecap ? "clw" : "lw";
      case Op::LBU: return purecap ? "clbu" : "lbu";
      case Op::LHU: return purecap ? "clhu" : "lhu";
      case Op::SB: return purecap ? "csb" : "sb";
      case Op::SH: return purecap ? "csh" : "sh";
      case Op::SW: return purecap ? "csw" : "sw";
      case Op::ADDI: return "addi";
      case Op::SLTI: return "slti";
      case Op::SLTIU: return "sltiu";
      case Op::XORI: return "xori";
      case Op::ORI: return "ori";
      case Op::ANDI: return "andi";
      case Op::SLLI: return "slli";
      case Op::SRLI: return "srli";
      case Op::SRAI: return "srai";
      case Op::ADD: return "add";
      case Op::SUB: return "sub";
      case Op::SLL: return "sll";
      case Op::SLT: return "slt";
      case Op::SLTU: return "sltu";
      case Op::XOR: return "xor";
      case Op::SRL: return "srl";
      case Op::SRA: return "sra";
      case Op::OR: return "or";
      case Op::AND: return "and";
      case Op::MUL: return "mul";
      case Op::MULH: return "mulh";
      case Op::MULHSU: return "mulhsu";
      case Op::MULHU: return "mulhu";
      case Op::DIV: return "div";
      case Op::DIVU: return "divu";
      case Op::REM: return "rem";
      case Op::REMU: return "remu";
      case Op::AMOADD_W: return "amoadd.w";
      case Op::AMOSWAP_W: return "amoswap.w";
      case Op::AMOAND_W: return "amoand.w";
      case Op::AMOOR_W: return "amoor.w";
      case Op::AMOXOR_W: return "amoxor.w";
      case Op::AMOMIN_W: return "amomin.w";
      case Op::AMOMAX_W: return "amomax.w";
      case Op::AMOMINU_W: return "amominu.w";
      case Op::AMOMAXU_W: return "amomaxu.w";
      case Op::FADD_S: return "fadd.s";
      case Op::FSUB_S: return "fsub.s";
      case Op::FMUL_S: return "fmul.s";
      case Op::FDIV_S: return "fdiv.s";
      case Op::FSQRT_S: return "fsqrt.s";
      case Op::FMIN_S: return "fmin.s";
      case Op::FMAX_S: return "fmax.s";
      case Op::FCVT_W_S: return "fcvt.w.s";
      case Op::FCVT_WU_S: return "fcvt.wu.s";
      case Op::FCVT_S_W: return "fcvt.s.w";
      case Op::FCVT_S_WU: return "fcvt.s.wu";
      case Op::FEQ_S: return "feq.s";
      case Op::FLT_S: return "flt.s";
      case Op::FLE_S: return "fle.s";
      case Op::CSRRW: return "csrrw";
      case Op::CSRRS: return "csrrs";
      case Op::SIMT_PUSH: return "simt.push";
      case Op::SIMT_POP: return "simt.pop";
      case Op::SIMT_BARRIER: return "simt.barrier";
      case Op::SIMT_HALT: return "simt.halt";
      case Op::SIMT_TRAP: return "simt.trap";
      case Op::CSETBOUNDS: return "csetbounds";
      case Op::CSETBOUNDSEXACT: return "csetboundsexact";
      case Op::CSETBOUNDSIMM: return "csetboundsimm";
      case Op::CSETADDR: return "csetaddr";
      case Op::CINCOFFSET: return "cincoffset";
      case Op::CINCOFFSETIMM: return "cincoffsetimm";
      case Op::CANDPERM: return "candperm";
      case Op::CSETFLAGS: return "csetflags";
      case Op::CSPECIALRW: return "cspecialrw";
      case Op::CGETPERM: return "cgetperm";
      case Op::CGETTYPE: return "cgettype";
      case Op::CGETBASE: return "cgetbase";
      case Op::CGETLEN: return "cgetlen";
      case Op::CGETTAG: return "cgettag";
      case Op::CGETSEALED: return "cgetsealed";
      case Op::CGETADDR: return "cgetaddr";
      case Op::CGETFLAGS: return "cgetflags";
      case Op::CMOVE: return "cmove";
      case Op::CCLEARTAG: return "ccleartag";
      case Op::CSEALENTRY: return "csealentry";
      case Op::CRRL: return "crrl";
      case Op::CRAM: return "cram";
      case Op::CJALR_CAP: return "cjalr.cap";
      case Op::CLC: return "clc";
      case Op::CSC: return "csc";
      default: return "unknown";
    }
}

std::string
toString(const Instr &i, bool purecap)
{
    std::string s = opName(i.op, purecap);
    if (isLoad(i.op)) {
        return support::strprintf("%s x%d, %d(x%d)", s.c_str(), i.rd, i.imm,
                                  i.rs1);
    }
    if (isStore(i.op)) {
        return support::strprintf("%s x%d, %d(x%d)", s.c_str(), i.rs2, i.imm,
                                  i.rs1);
    }
    if (isBranch(i.op)) {
        return support::strprintf("%s x%d, x%d, %d", s.c_str(), i.rs1, i.rs2,
                                  i.imm);
    }
    if (usesRd(i.op) && usesRs1(i.op) && usesRs2(i.op)) {
        return support::strprintf("%s x%d, x%d, x%d", s.c_str(), i.rd, i.rs1,
                                  i.rs2);
    }
    if (usesRd(i.op) && usesRs1(i.op)) {
        return support::strprintf("%s x%d, x%d, %d", s.c_str(), i.rd, i.rs1,
                                  i.imm);
    }
    if (usesRd(i.op)) {
        return support::strprintf("%s x%d, %d", s.c_str(), i.rd, i.imm);
    }
    return s;
}

} // namespace isa
