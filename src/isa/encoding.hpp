/**
 * @file
 * Binary encoding and decoding of the simulated instruction set.
 *
 * Standard RISC-V instructions use their architectural encodings
 * (opcode/funct3/funct7 and the I/S/B/U/J immediate formats). CHERI
 * instructions live in major opcode 0x5b following the CHERI-RISC-V v9
 * layout: two-source ops are R-type with a distinguishing funct7,
 * one-source ops use funct7 0x7f with an rs2-field selector, and the
 * immediate forms use funct3 1 and 2. SIMT control instructions use the
 * custom-0 opcode (0x0b) with a funct3 selector. CLC/CSC reuse the LOAD
 * and STORE major opcodes with funct3 3 (free in RV32).
 */

#ifndef CHERI_SIMT_ISA_ENCODING_HPP_
#define CHERI_SIMT_ISA_ENCODING_HPP_

#include <cstdint>

#include "isa/instr.hpp"

namespace isa
{

/** Encode a decoded instruction into its 32-bit binary form. */
uint32_t encode(const Instr &instr);

/** Decode a 32-bit word. Unknown encodings decode to Op::ILLEGAL. */
Instr decode(uint32_t word);

} // namespace isa

#endif // CHERI_SIMT_ISA_ENCODING_HPP_
