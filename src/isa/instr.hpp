/**
 * @file
 * Instruction set definition for the CHERI-SIMT reproduction.
 *
 * The simulated machine implements RISC-V rv32ima_zfinx (as in SIMTight)
 * plus a large subset of CHERI-RISC-V v9 (the instructions of the paper's
 * Figure 4) and a handful of SIMT control instructions (convergence hints,
 * block barrier, thread halt) that SIMTight exposes through its runtime.
 *
 * In pure-capability mode the standard load/store/jump opcodes operate
 * through capabilities (the paper's CL[BHW][U]/CS[BHW]/AUIPCC/CJAL/CJALR
 * names); CLC/CSC additionally move whole capabilities between registers
 * and memory.
 */

#ifndef CHERI_SIMT_ISA_INSTR_HPP_
#define CHERI_SIMT_ISA_INSTR_HPP_

#include <cstdint>
#include <string>

namespace isa
{

/** Mnemonic-level opcodes. */
enum class Op : uint8_t
{
    ILLEGAL = 0,

    // RV32I
    LUI, AUIPC, JAL, JALR,
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    LB, LH, LW, LBU, LHU,
    SB, SH, SW,
    ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
    ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,

    // RV32M
    MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,

    // RV32A (word atomics)
    AMOADD_W, AMOSWAP_W, AMOAND_W, AMOOR_W, AMOXOR_W,
    AMOMIN_W, AMOMAX_W, AMOMINU_W, AMOMAXU_W,

    // Zfinx single-precision floating point in the integer registers
    FADD_S, FSUB_S, FMUL_S, FDIV_S, FSQRT_S, FMIN_S, FMAX_S,
    FCVT_W_S, FCVT_WU_S, FCVT_S_W, FCVT_S_WU,
    FEQ_S, FLT_S, FLE_S,

    // Zicsr subset
    CSRRW, CSRRS,

    // SIMT control (custom-0 opcode space)
    SIMT_PUSH,    ///< enter a deeper convergence nesting level
    SIMT_POP,     ///< leave the current convergence nesting level
    SIMT_BARRIER, ///< block-wide barrier (__syncthreads)
    SIMT_HALT,    ///< terminate the executing thread
    SIMT_TRAP,    ///< software trap (failed software bounds check)

    // CHERI-RISC-V (two register sources)
    CSETBOUNDS, CSETBOUNDSEXACT, CSETADDR, CINCOFFSET, CANDPERM, CSETFLAGS,
    CSPECIALRW,

    // CHERI-RISC-V (one register source, encoded via rs2 selector)
    CGETPERM, CGETTYPE, CGETBASE, CGETLEN, CGETTAG, CGETSEALED, CGETADDR,
    CGETFLAGS, CMOVE, CCLEARTAG, CSEALENTRY, CRRL, CRAM, CJALR_CAP,

    // CHERI-RISC-V (immediate forms)
    CINCOFFSETIMM, CSETBOUNDSIMM,

    // Capability load/store (65-bit register <-> tagged memory)
    CLC, CSC,

    NUM_OPS
};

/** Special capability registers addressed by CSpecialRW. */
enum Scr : uint8_t
{
    SCR_PCC = 0,  ///< program-counter capability (read-only)
    SCR_DDC = 1,  ///< default data capability
    SCR_STC = 2,  ///< stack root capability (set at kernel launch)
    SCR_ARG = 3,  ///< kernel-argument block capability
    NUM_SCRS = 4,
};

/** CSR addresses understood by the simulator. */
enum Csr : uint16_t
{
    CSR_HARTID = 0xf14,     ///< global hardware thread id
    CSR_NUMTHREADS = 0xfc0, ///< total hardware threads in the SM
    CSR_WARPID = 0xfc1,     ///< warp index of this thread
    CSR_LANEID = 0xfc2,     ///< lane index within the warp
};

/** A decoded instruction. */
struct Instr
{
    Op op = Op::ILLEGAL;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0; ///< sign-extended immediate / CSR address / SCR index

    bool operator==(const Instr &) const = default;
};

/** Instruction classification helpers. */
bool isCheri(Op op);

/** Ops the optimised configuration executes in the shared function unit. */
bool isCheriSlowPath(Op op);

/** Memory access (load/store/atomic, including CLC/CSC). */
bool isMemAccess(Op op);
bool isLoad(Op op);
bool isStore(Op op);
bool isAtomic(Op op);

/** Floating-point ops executed in the shared function unit in SIMTight. */
bool isFpSlowPath(Op op);

/** Control transfer. */
bool isBranch(Op op);
bool isJump(Op op);

/**
 * Ops eligible for the simulator's warp-regularity fast path: when every
 * active lane sees uniform (or, for address generation, affine) operands
 * the op can be executed once and its result broadcast. Excludes ops with
 * per-lane side effects that are not a pure function of the operand values
 * (CSPECIALRW reads the SCR file per lane after earlier lanes wrote it),
 * ops that can trap per lane on non-operand state (CSETBOUNDSEXACT,
 * SIMT_TRAP), atomics (serialised read-modify-write), and the SFU-class
 * ops (FDIV/FSQRT) whose per-lane loop is the modelled behaviour.
 */
bool isScalarisable(Op op);

/** log2 of access size in bytes for memory ops (CLC/CSC are 3). */
unsigned accessLogWidth(Op op);

/** Operand-usage queries (used for decode normalisation and disassembly). */
bool usesRd(Op op);
bool usesRs1(Op op);
bool usesRs2(Op op);

/** Zero the operand fields an instruction does not use. */
void normalizeOperands(Instr &instr);

/** Mnemonic name; with @p purecap, load/store/jump names are CHERI-style. */
std::string opName(Op op, bool purecap = false);

/** Render a full instruction for debugging/disassembly. */
std::string toString(const Instr &instr, bool purecap = false);

} // namespace isa

#endif // CHERI_SIMT_ISA_INSTR_HPP_
