#include "nocl/nocl.hpp"

#include <chrono>
#include <thread>

#include "isa/encoding.hpp"
#include "support/bits.hpp"
#include "support/logging.hpp"
#include "support/trace.hpp"

namespace nocl
{

namespace
{

/** First heap address: the argument block occupies the page before it. */
constexpr uint32_t kHeapBase = simt::kDramBase + 0x2000;

/** Data permissions granted to buffer capabilities. */
constexpr uint8_t kDataPerms =
    cap::PERM_GLOBAL | cap::PERM_LOAD | cap::PERM_STORE |
    cap::PERM_LOAD_CAP | cap::PERM_STORE_CAP;

/** Cache key: IR fingerprint plus every codegen-relevant option. */
std::string
cacheKey(const kc::KernelIr &ir, const kc::CompileOptions &opts)
{
    return support::strprintf(
        "%s|%016llx|m%u|b%u|g%u|t%u|s%u|c%u|n%u", ir.name.c_str(),
        static_cast<unsigned long long>(kc::irFingerprint(ir)),
        static_cast<unsigned>(opts.mode), opts.blockDim, opts.gridDim,
        opts.numThreads, opts.stackBytes, opts.capRegLimit, opts.numSms);
}

/** Disassembly of a compiled image, one line per code word (for the
 *  profiler's per-PC report). */
std::vector<std::string>
disasmOf(const kc::CompiledKernel &compiled, bool purecap)
{
    std::vector<std::string> out;
    out.reserve(compiled.code.size());
    for (uint32_t word : compiled.code)
        out.push_back(isa::toString(isa::decode(word), purecap));
    return out;
}

} // namespace

KernelCache &
KernelCache::instance()
{
    static KernelCache cache;
    return cache;
}

std::shared_ptr<const kc::CompiledKernel>
KernelCache::getOrCompile(const kc::KernelIr &ir,
                          const kc::CompileOptions &opts)
{
    const std::string key = cacheKey(ir, opts);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
    }
    // Compile outside the lock: compilation is deterministic, so two
    // threads racing on the same key produce identical kernels and
    // first-insert-wins is safe.
    auto compiled =
        std::make_shared<const kc::CompiledKernel>(kc::compile(ir, opts));
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = entries_.emplace(key, std::move(compiled));
    (void)inserted;
    return it->second;
}

uint64_t
KernelCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

uint64_t
KernelCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

size_t
KernelCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
KernelCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

Device::Device(const simt::SmConfig &sm_cfg, kc::CompileOptions::Mode mode)
    : smCfg_(sm_cfg), mode_(mode)
{
    fatal_if(mode == kc::CompileOptions::Mode::Purecap && !sm_cfg.purecap,
             "pure-capability code requires a CHERI-enabled SM");
    fatal_if(mode != kc::CompileOptions::Mode::Purecap && sm_cfg.purecap,
             "a CHERI SM runs pure-capability code");
    fatal_if(sm_cfg.numSms == 0, "a device needs at least one SM");
    fatal_if(sm_cfg.smId != 0, "Device assigns SM ids itself");
    for (unsigned k = 0; k < sm_cfg.numSms; ++k) {
        simt::SmConfig cfg = smCfg_;
        cfg.smId = k;
        sms_.push_back(std::make_unique<simt::Sm>(cfg));
    }
    // SM 0's memory is the device's authoritative DRAM; the other SMs'
    // own memories sit unused behind their epoch shards.
    memsys_ = std::make_unique<simt::MemorySystem>(sms_[0]->dram());

    kc::CompileOptions opts = compileOptions(LaunchConfig{});
    heapNext_ = kHeapBase;
    heapLimit_ = kc::stackRegionBase(opts);
}

kc::CompileOptions
Device::compileOptions(const LaunchConfig &cfg) const
{
    kc::CompileOptions opts;
    opts.mode = mode_;
    opts.blockDim = cfg.blockDim;
    opts.gridDim = cfg.gridDim;
    opts.numThreads = smCfg_.globalNumThreads();
    opts.numSms = smCfg_.numSms;
    opts.capRegLimit = cfg.capRegLimit;
    return opts;
}

Buffer
Device::alloc(uint32_t bytes)
{
    fatal_if(bytes == 0, "zero-sized allocation");
    // Align the base so the buffer's capability bounds are exactly
    // representable (what a CHERI-aware allocator does).
    const uint32_t len = cap::representableLength(bytes);
    const uint32_t mask = cap::representableAlignmentMask(bytes);
    uint32_t base = heapNext_;
    base = (base + ~mask) & mask;
    fatal_if(base + len > heapLimit_, "device heap exhausted");
    heapNext_ = base + len;

    Buffer b;
    b.addr = base;
    b.bytes = bytes;
    for (uint32_t a = base; a < base + len; a += 4)
        dram().store32(a, 0);
    return b;
}

void
Device::write8(const Buffer &b, const std::vector<uint8_t> &data)
{
    panic_if(data.size() > b.bytes, "write exceeds buffer");
    for (size_t i = 0; i < data.size(); ++i)
        dram().store8(b.addr + static_cast<uint32_t>(i), data[i]);
}

void
Device::write32(const Buffer &b, const std::vector<uint32_t> &data)
{
    panic_if(data.size() * 4 > b.bytes, "write exceeds buffer");
    for (size_t i = 0; i < data.size(); ++i)
        dram().store32(b.addr + static_cast<uint32_t>(i) * 4, data[i]);
}

void
Device::writeF32(const Buffer &b, const std::vector<float> &data)
{
    std::vector<uint32_t> words(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
        uint32_t w;
        static_assert(sizeof(float) == 4);
        __builtin_memcpy(&w, &data[i], 4);
        words[i] = w;
    }
    write32(b, words);
}

std::vector<uint8_t>
Device::read8(const Buffer &b) const
{
    std::vector<uint8_t> out(b.bytes);
    for (uint32_t i = 0; i < b.bytes; ++i)
        out[i] = dram().load8(b.addr + i);
    return out;
}

std::vector<uint32_t>
Device::read32(const Buffer &b) const
{
    std::vector<uint32_t> out(b.bytes / 4);
    for (uint32_t i = 0; i < out.size(); ++i)
        out[i] = dram().load32(b.addr + i * 4);
    return out;
}

std::vector<float>
Device::readF32(const Buffer &b) const
{
    const std::vector<uint32_t> words = read32(b);
    std::vector<float> out(words.size());
    for (size_t i = 0; i < words.size(); ++i)
        __builtin_memcpy(&out[i], &words[i], 4);
    return out;
}

kc::CompiledKernel
Device::compileOnly(kc::KernelDef &def, const LaunchConfig &cfg) const
{
    const kc::KernelIr ir = kc::buildIr(def);
    return kc::compile(ir, compileOptions(cfg));
}

std::shared_ptr<const kc::CompiledKernel>
Device::compileCached(kc::KernelDef &def, const LaunchConfig &cfg) const
{
    const kc::KernelIr ir = kc::buildIr(def);
    return KernelCache::instance().getOrCompile(ir, compileOptions(cfg));
}

RunResult
Device::launch(kc::KernelDef &def, const LaunchConfig &cfg,
               const std::vector<Arg> &args)
{
    return launchCompiled(compileCached(def, cfg), cfg, args);
}

uint32_t
Device::heapStart() const
{
    return kHeapBase;
}

RunResult
Device::launchCompiled(
    const std::shared_ptr<const kc::CompiledKernel> &compiled,
    const LaunchConfig &cfg, const std::vector<Arg> &args)
{
    return launchAttempt(compiled, cfg, args, 2'000'000'000ull,
                         /*defer_serial_fallback=*/false,
                         /*force_serial=*/false);
}

RunResult
Device::launchWithPolicy(kc::KernelDef &def, const LaunchConfig &cfg,
                         const std::vector<Arg> &args,
                         const LaunchPolicy &policy)
{
    return launchWithPolicy(compileCached(def, cfg), cfg, args, policy);
}

RunResult
Device::launchWithPolicy(
    const std::shared_ptr<const kc::CompiledKernel> &compiled,
    const LaunchConfig &cfg, const std::vector<Arg> &args,
    const LaunchPolicy &policy)
{
    // Snapshot the launch-visible DRAM (buffers + argument block) so a
    // failed attempt can be replayed from identical state. MainMemory is
    // a plain value type, so this is a straight copy.
    const simt::MainMemory snapshot = dram();

    const auto attempt = [&](bool force_serial) {
        return launchAttempt(compiled, cfg, args, policy.maxCycles,
                             /*defer_serial_fallback=*/!force_serial,
                             force_serial);
    };
    const auto needs_retry = [](const RunResult &r) {
        return (r.mergeFallback && !r.completed) ||
               (r.trapped &&
                r.trapKind == simt::TrapKind::WatchdogTimeout);
    };

    RunResult res = attempt(false);
    unsigned retries = 0;
    unsigned watchdog_total = res.watchdogFires;
    while (needs_retry(res) && retries < policy.maxRetries) {
        ++retries;
        if (trace_ != nullptr) {
            using namespace support::trace;
            support::trace::Buffer *buf = trace_->deviceBuffer();
            if (buf->wants(kCatWatchdog)) {
                buf->setNow(0);
                using support::json::Value;
                Event &e = buf->emit(EventKind::Instant, kCatWatchdog,
                                     "containment-retry");
                e.args.emplace_back("attempt", Value::integer(retries));
                e.args.emplace_back(
                    "reason",
                    Value::str(res.trapped ? "watchdog-timeout"
                                           : "merge-conflict"));
            }
        }
        dram() = snapshot;
        res = attempt(false);
        watchdog_total += res.watchdogFires;
    }
    if (policy.degradeToSerial && numSms() > 1 && res.mergeFallback &&
        !res.completed &&
        !(res.trapped &&
          res.trapKind == simt::TrapKind::WatchdogTimeout)) {
        // Degradation is for merge conflicts only: a watchdog-stopped
        // launch would simply time out again in serial form.
        // Parallel execution keeps conflicting: give up on it and run
        // the SMs one at a time for exact sequential semantics.
        if (trace_ != nullptr) {
            using namespace support::trace;
            support::trace::Buffer *buf = trace_->deviceBuffer();
            if (buf->wants(kCatLaunch)) {
                buf->setNow(0);
                using support::json::Value;
                Event &e = buf->emit(EventKind::Instant, kCatLaunch,
                                     "degrade-to-serial");
                e.args.emplace_back(
                    "reason", Value::str(res.mergeFallbackReason));
            }
        }
        dram() = snapshot;
        res = attempt(true);
        watchdog_total += res.watchdogFires;
        res.degraded = true;
    }
    res.retries = retries;
    res.watchdogFires = watchdog_total;
    return res;
}

RunResult
Device::launchAttempt(
    const std::shared_ptr<const kc::CompiledKernel> &compiled_ptr,
    const LaunchConfig &cfg, const std::vector<Arg> &args,
    uint64_t max_cycles, bool defer_serial_fallback, bool force_serial)
{
    fatal_if(compiled_ptr == nullptr, "launchCompiled without a kernel");
    const kc::CompiledKernel &compiled = *compiled_ptr;
    const kc::CompileOptions opts = compileOptions(cfg);

    fatal_if(cfg.blockDim < smCfg_.numLanes ||
                 cfg.blockDim % smCfg_.numLanes != 0,
             "blockDim must be a multiple of the warp size");
    fatal_if(cfg.blockDim > smCfg_.numThreads(),
             "blockDim exceeds the SM thread count");

    fatal_if(args.size() != compiled.params.size(),
             "kernel %s expects %zu arguments, got %zu",
             compiled.name.c_str(), compiled.params.size(), args.size());
    const unsigned num_slots = smCfg_.numThreads() / cfg.blockDim;
    fatal_if(static_cast<uint64_t>(compiled.sharedBytes) * num_slots >
                 simt::kSharedSize,
             "kernel %s: shared arrays (%u B x %u block slots) exceed the "
             "scratchpad",
             compiled.name.c_str(), compiled.sharedBytes, num_slots);

    // ---- Write the argument block ----
    const uint32_t arg_base = kc::argBlockAddress();
    const bool purecap = mode_ == kc::CompileOptions::Mode::Purecap;
    const bool soft = mode_ == kc::CompileOptions::Mode::SoftBounds;

    for (size_t p = 0; p < args.size(); ++p) {
        const kc::ParamSlot &slot = compiled.params[p];
        const Arg &arg = args[p];
        const uint32_t at = arg_base + slot.offset;
        if (slot.isPtr) {
            fatal_if(arg.kind != Arg::Kind::Buf,
                     "argument %zu of %s must be a buffer", p,
                     compiled.name.c_str());
            if (purecap) {
                // The host narrows a root-derived capability to the
                // buffer and stores it, tagged, into the block.
                cap::CapPipe c = cap::setAddr(cap::rootCap(), arg.buf.addr);
                c = cap::setBounds(c, arg.buf.bytes).cap;
                c = cap::andPerms(c, kDataPerms);
                dram().storeCap(at, cap::toMem(c));
            } else if (soft) {
                dram().store32(at, arg.buf.addr);
                dram().store32(at + 4,
                                    arg.buf.bytes / slot.elemBytes);
                dram().clearTagForStore(at, 8);
            } else {
                dram().store32(at, arg.buf.addr);
                dram().clearTagForStore(at, 4);
            }
        } else {
            uint32_t word;
            if (arg.kind == Arg::Kind::Float) {
                __builtin_memcpy(&word, &arg.f, 4);
            } else {
                word = static_cast<uint32_t>(arg.i);
            }
            dram().store32(at, word);
            dram().clearTagForStore(at, 4);
        }
    }

    // ---- Memory-site fault injection ----
    //
    // Tag / DRAM-word faults are applied once, here, to the shared base
    // DRAM after the argument block is written: every SM (and every
    // `--sms` count) then observes the identical corrupted image, which
    // is what makes campaign classification SM-count-invariant. Runtime
    // sites are handled inside each Sm instead.
    unsigned memory_faults = 0;
    if (smCfg_.faultPlan.memorySite() &&
        simt::applyMemoryFault(smCfg_.faultPlan, dram()))
        ++memory_faults;

    // ---- Trace-session plumbing (observational only) ----
    //
    // The device runtime owns the sm = -1 buffer; the memory system
    // reports epoch commits into it. Per-SM buffers and profile scratch
    // are created here, on the control thread, before any worker spawns.
    support::trace::Buffer *devbuf = nullptr;
    if (trace_ != nullptr) {
        devbuf = trace_->deviceBuffer();
        devbuf->setNow(0);
        memsys_->attachTrace(devbuf);
        if (memory_faults > 0 &&
            devbuf->wants(support::trace::kCatFault)) {
            using support::json::Value;
            const char *site = simt::faultSiteName(smCfg_.faultPlan.site);
            support::trace::Event &e =
                devbuf->emit(support::trace::EventKind::Instant,
                             support::trace::kCatFault,
                             std::string("fault-apply: ") + site);
            e.args.emplace_back("site", Value::str(site));
            e.args.emplace_back(
                "addr", Value::str(support::strprintf(
                            "0x%08x", smCfg_.faultPlan.addr & ~3u)));
            e.args.emplace_back("bit",
                                Value::integer(smCfg_.faultPlan.bit));
        }
    }

    // Close out the attempt on the trace timeline: emit the launch span,
    // fold the profile scratch, and advance the track past this attempt.
    const auto trace_attempt_end = [&](const RunResult &res, bool serial) {
        if (trace_ == nullptr)
            return;
        using namespace support::trace;
        using support::json::Value;
        if (devbuf->wants(kCatLaunch)) {
            devbuf->setNow(0);
            Event &e = devbuf->emit(EventKind::Span, kCatLaunch,
                                    std::string("launch ") + compiled.name);
            e.dur = res.cycles;
            e.args.emplace_back("kernel", Value::str(compiled.name));
            e.args.emplace_back("sms", Value::integer(res.numSms));
            e.args.emplace_back("serial", Value::boolean(serial));
            e.args.emplace_back("completed",
                                Value::boolean(res.completed));
            e.args.emplace_back("trapped", Value::boolean(res.trapped));
        }
        if (trace_->profiling())
            trace_->setDisasm(disasmOf(compiled, purecap));
        trace_->foldProfile();
        memsys_->attachTrace(nullptr);
        trace_->commitAttempt(res.cycles);
    };

    // ---- Special capability registers (all SMs share them) ----
    if (purecap) {
        cap::CapPipe stc =
            cap::setAddr(cap::rootCap(), kc::stackRegionBase(opts));
        stc = cap::setBounds(stc, opts.numThreads * opts.stackBytes).cap;
        stc = cap::andPerms(stc, kDataPerms);

        cap::CapPipe argc = cap::setAddr(cap::rootCap(), arg_base);
        argc = cap::setBounds(argc, compiled.paramBlockBytes).cap;
        argc = cap::andPerms(argc,
                             cap::PERM_GLOBAL | cap::PERM_LOAD |
                                 cap::PERM_LOAD_CAP);

        for (auto &sm : sms_) {
            sm->setScr(isa::SCR_DDC, cap::rootCap());
            sm->setScr(isa::SCR_STC, stc);
            sm->setScr(isa::SCR_ARG, argc);
        }
    }

    const unsigned warps_per_block = cfg.blockDim / smCfg_.numLanes;

    // ---- Run ----
    if (smCfg_.numSms == 1) {
        // Single SM: the exact pre-sharding code path.
        simt::Sm &sm = *sms_[0];
        if (trace_ != nullptr)
            sm.attachTrace(trace_->smBuffer(0),
                           trace_->pcScratch(0, compiled.code.size()));
        sm.loadProgram(compiled.code);
        // Key the simulator's adaptive engine-decision cache with the
        // KernelCache identity, so every compilation of the same kernel
        // IR shares one decision (must precede launch(), which resolves
        // the engine).
        sm.setProgramKey(support::strprintf(
            "%s|%016llx", compiled.name.c_str(),
            static_cast<unsigned long long>(compiled.fingerprint)));
        sm.launch(0, warps_per_block);
        const bool completed = sm.run(max_cycles);

        RunResult res;
        res.completed = completed;
        res.trapped = sm.trapped();
        if (res.trapped) {
            res.trapKind = sm.firstTrap().kind;
            res.trapAddr = sm.firstTrap().addr;
            res.trapInfo = sm.firstTrap();
            res.trapSm = 0;
            if (res.trapKind == simt::TrapKind::WatchdogTimeout)
                res.watchdogFires = 1;
        }
        res.cycles = sm.cycles();
        res.stats = sm.stats();
        res.kernel = compiled_ptr;
        res.avgDataVrf = sm.avgDataVectorsInVrf();
        res.avgMetaVrf = sm.avgMetaVectorsInVrf();
        res.rfCapRegMask = sm.regfile().capRegMask();
        res.hostNs = sm.hostNanos();
        res.smCycles = {res.cycles};
        res.faultInjections = memory_faults + sm.faultFires();
        if (trace_ != nullptr) {
            sm.attachTrace(nullptr);
            trace_attempt_end(res, /*serial=*/false);
        }
        return res;
    }

    // Multi-SM: run every SM on its own host worker thread against a
    // private shard of the shared DRAM, then merge deterministically.
    // A cross-SM conflict aborts the merge (committing nothing) and the
    // launch is rerun serially, SM by SM, for exact sequential
    // semantics -- the same conservative gating as the hostFastPath.
    const unsigned ns = smCfg_.numSms;
    const auto t0 = std::chrono::steady_clock::now();

    for (auto &sm : sms_) {
        sm->loadProgram(compiled.code);
        sm->setProgramKey(support::strprintf(
            "%s|%016llx", compiled.name.c_str(),
            static_cast<unsigned long long>(compiled.fingerprint)));
    }
    if (trace_ != nullptr) {
        // Buffers and scratch must exist before the workers spawn; each
        // worker then only ever touches its own SM's buffer.
        for (unsigned k = 0; k < ns; ++k)
            sms_[k]->attachTrace(
                trace_->smBuffer(k),
                trace_->pcScratch(k, compiled.code.size()));
    }

    std::vector<uint8_t> completed(ns, 0);
    RunResult res;
    res.numSms = ns;
    res.kernel = compiled_ptr;

    bool run_serially = force_serial;
    bool aborted = false;
    if (!force_serial) {
        memsys_->beginEpoch(ns);
        {
            std::vector<std::thread> workers;
            workers.reserve(ns);
            for (unsigned k = 0; k < ns; ++k) {
                workers.emplace_back([&, k] {
                    sms_[k]->attachShard(&memsys_->shard(k));
                    sms_[k]->launch(0, warps_per_block);
                    completed[k] = sms_[k]->run(max_cycles) ? 1 : 0;
                    sms_[k]->attachShard(nullptr);
                });
            }
            for (auto &w : workers)
                w.join();
        }
        if (devbuf != nullptr) {
            // Stamp the epoch-commit event at the slowest SM's finish.
            uint64_t max_c = 0;
            for (auto &sm : sms_)
                max_c = std::max(max_c, sm->cycles());
            devbuf->setNow(max_c);
        }
        const simt::MemorySystem::MergeReport merge =
            memsys_->commitEpoch();
        memsys_->endEpoch();

        if (merge.conflict) {
            res.mergeFallback = true;
            res.mergeFallbackReason = support::strprintf(
                "%s at 0x%08x", merge.reason, merge.conflictAddr);
            if (defer_serial_fallback) {
                // The conflicting epoch committed nothing; leave the
                // launch incomplete and let the caller's policy decide
                // between retry and serial degradation.
                aborted = true;
            } else {
                run_serially = true;
            }
        }
    }

    if (run_serially) {
        // Serial execution: one SM at a time, each in its own
        // single-shard epoch (a single shard can never conflict, so
        // its commit applies everything), giving exact sequential
        // semantics on the shared DRAM.
        for (unsigned k = 0; k < ns; ++k) {
            memsys_->beginEpoch(1);
            sms_[k]->attachShard(&memsys_->shard(0));
            sms_[k]->launch(0, warps_per_block);
            completed[k] = sms_[k]->run(max_cycles) ? 1 : 0;
            sms_[k]->attachShard(nullptr);
            if (devbuf != nullptr)
                devbuf->setNow(sms_[k]->cycles());
            const auto rep = memsys_->commitEpoch();
            panic_if(rep.conflict, "single-shard epoch conflicted");
            memsys_->endEpoch();
        }
    }

    // ---- Aggregate per-SM results ----
    res.completed = true;
    uint64_t cycles_sum = 0;
    double data_vrf_weighted = 0.0, meta_vrf_weighted = 0.0;
    for (unsigned k = 0; k < ns; ++k) {
        simt::Sm &sm = *sms_[k];
        res.completed = res.completed && completed[k];
        if (sm.trapped() && !res.trapped) {
            // Deterministic choice: the lowest-numbered trapped SM.
            res.trapped = true;
            res.trapKind = sm.firstTrap().kind;
            res.trapAddr = sm.firstTrap().addr;
            res.trapInfo = sm.firstTrap();
            res.trapSm = k;
        }
        if (sm.trapped() &&
            sm.firstTrap().kind == simt::TrapKind::WatchdogTimeout)
            ++res.watchdogFires;
        res.faultInjections += sm.faultFires();
        res.smCycles.push_back(sm.cycles());
        res.cycles = std::max(res.cycles, sm.cycles());
        cycles_sum += sm.cycles();
        res.stats.merge(sm.stats());
        data_vrf_weighted +=
            sm.avgDataVectorsInVrf() * static_cast<double>(sm.cycles());
        meta_vrf_weighted +=
            sm.avgMetaVectorsInVrf() * static_cast<double>(sm.cycles());
        res.rfCapRegMask |= sm.regfile().capRegMask();
    }
    if (res.stats.has("cycles"))
        res.stats.set("cycles", res.cycles);
    res.stats.set("cycles_sum", cycles_sum);
    res.stats.set("merge_fallbacks", res.mergeFallback ? 1 : 0);
    if (cycles_sum > 0) {
        res.avgDataVrf =
            data_vrf_weighted / static_cast<double>(cycles_sum);
        res.avgMetaVrf =
            meta_vrf_weighted / static_cast<double>(cycles_sum);
    }
    res.hostNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    res.faultInjections += memory_faults;
    if (aborted)
        res.completed = false;
    if (trace_ != nullptr) {
        for (auto &sm : sms_)
            sm->attachTrace(nullptr);
        trace_attempt_end(res, run_serially);
    }
    return res;
}

} // namespace nocl
