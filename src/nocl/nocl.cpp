#include "nocl/nocl.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "isa/encoding.hpp"
#include "support/bits.hpp"
#include "support/logging.hpp"
#include "support/serialize.hpp"
#include "support/trace.hpp"

namespace nocl
{

namespace
{

/** First heap address: the argument block occupies the page before it. */
constexpr uint32_t kHeapBase = simt::kDramBase + 0x2000;

/** Data permissions granted to buffer capabilities. */
constexpr uint8_t kDataPerms =
    cap::PERM_GLOBAL | cap::PERM_LOAD | cap::PERM_STORE |
    cap::PERM_LOAD_CAP | cap::PERM_STORE_CAP;

/** Cache key: IR fingerprint plus every codegen-relevant option. */
std::string
cacheKey(const kc::KernelIr &ir, const kc::CompileOptions &opts)
{
    return support::strprintf(
        "%s|%016llx|m%u|b%u|g%u|t%u|s%u|c%u|n%u", ir.name.c_str(),
        static_cast<unsigned long long>(kc::irFingerprint(ir)),
        static_cast<unsigned>(opts.mode), opts.blockDim, opts.gridDim,
        opts.numThreads, opts.stackBytes, opts.capRegLimit, opts.numSms);
}

/** Disassembly of a compiled image, one line per code word (for the
 *  profiler's per-PC report). */
std::vector<std::string>
disasmOf(const kc::CompiledKernel &compiled, bool purecap)
{
    std::vector<std::string> out;
    out.reserve(compiled.code.size());
    for (uint32_t word : compiled.code)
        out.push_back(isa::toString(isa::decode(word), purecap));
    return out;
}

} // namespace

KernelCache &
KernelCache::instance()
{
    static KernelCache cache;
    return cache;
}

std::shared_ptr<const kc::CompiledKernel>
KernelCache::getOrCompile(const kc::KernelIr &ir,
                          const kc::CompileOptions &opts)
{
    const std::string key = cacheKey(ir, opts);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
    }
    // Compile outside the lock: compilation is deterministic, so two
    // threads racing on the same key produce identical kernels and
    // first-insert-wins is safe.
    auto compiled =
        std::make_shared<const kc::CompiledKernel>(kc::compile(ir, opts));
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = entries_.emplace(key, std::move(compiled));
    (void)inserted;
    return it->second;
}

uint64_t
KernelCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

uint64_t
KernelCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

size_t
KernelCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
KernelCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

Device::Device(const simt::SmConfig &sm_cfg, kc::CompileOptions::Mode mode)
    : smCfg_(sm_cfg), mode_(mode)
{
    fatal_if(mode == kc::CompileOptions::Mode::Purecap && !sm_cfg.purecap,
             "pure-capability code requires a CHERI-enabled SM");
    fatal_if(mode != kc::CompileOptions::Mode::Purecap && sm_cfg.purecap,
             "a CHERI SM runs pure-capability code");
    fatal_if(sm_cfg.numSms == 0, "a device needs at least one SM");
    fatal_if(sm_cfg.smId != 0, "Device assigns SM ids itself");
    for (unsigned k = 0; k < sm_cfg.numSms; ++k) {
        simt::SmConfig cfg = smCfg_;
        cfg.smId = k;
        sms_.push_back(std::make_unique<simt::Sm>(cfg));
    }
    // SM 0's memory is the device's authoritative DRAM; the other SMs'
    // own memories sit unused behind their epoch shards.
    memsys_ = std::make_unique<simt::MemorySystem>(sms_[0]->dram());

    kc::CompileOptions opts = compileOptions(LaunchConfig{});
    heapNext_ = kHeapBase;
    heapLimit_ = kc::stackRegionBase(opts);
}

kc::CompileOptions
Device::compileOptions(const LaunchConfig &cfg) const
{
    kc::CompileOptions opts;
    opts.mode = mode_;
    opts.blockDim = cfg.blockDim;
    opts.gridDim = cfg.gridDim;
    opts.numThreads = smCfg_.globalNumThreads();
    opts.numSms = smCfg_.numSms;
    opts.capRegLimit = cfg.capRegLimit;
    return opts;
}

Buffer
Device::alloc(uint32_t bytes)
{
    fatal_if(bytes == 0, "zero-sized allocation");
    // Align the base so the buffer's capability bounds are exactly
    // representable (what a CHERI-aware allocator does).
    const uint32_t len = cap::representableLength(bytes);
    const uint32_t mask = cap::representableAlignmentMask(bytes);
    uint32_t base = heapNext_;
    base = (base + ~mask) & mask;
    fatal_if(base + len > heapLimit_, "device heap exhausted");
    heapNext_ = base + len;

    Buffer b;
    b.addr = base;
    b.bytes = bytes;
    for (uint32_t a = base; a < base + len; a += 4)
        dram().store32(a, 0);
    return b;
}

void
Device::write8(const Buffer &b, const std::vector<uint8_t> &data)
{
    panic_if(data.size() > b.bytes, "write exceeds buffer");
    for (size_t i = 0; i < data.size(); ++i)
        dram().store8(b.addr + static_cast<uint32_t>(i), data[i]);
}

void
Device::write32(const Buffer &b, const std::vector<uint32_t> &data)
{
    panic_if(data.size() * 4 > b.bytes, "write exceeds buffer");
    for (size_t i = 0; i < data.size(); ++i)
        dram().store32(b.addr + static_cast<uint32_t>(i) * 4, data[i]);
}

void
Device::writeF32(const Buffer &b, const std::vector<float> &data)
{
    std::vector<uint32_t> words(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
        uint32_t w;
        static_assert(sizeof(float) == 4);
        __builtin_memcpy(&w, &data[i], 4);
        words[i] = w;
    }
    write32(b, words);
}

std::vector<uint8_t>
Device::read8(const Buffer &b) const
{
    std::vector<uint8_t> out(b.bytes);
    for (uint32_t i = 0; i < b.bytes; ++i)
        out[i] = dram().load8(b.addr + i);
    return out;
}

std::vector<uint32_t>
Device::read32(const Buffer &b) const
{
    std::vector<uint32_t> out(b.bytes / 4);
    for (uint32_t i = 0; i < out.size(); ++i)
        out[i] = dram().load32(b.addr + i * 4);
    return out;
}

std::vector<float>
Device::readF32(const Buffer &b) const
{
    const std::vector<uint32_t> words = read32(b);
    std::vector<float> out(words.size());
    for (size_t i = 0; i < words.size(); ++i)
        __builtin_memcpy(&out[i], &words[i], 4);
    return out;
}

kc::CompiledKernel
Device::compileOnly(kc::KernelDef &def, const LaunchConfig &cfg) const
{
    const kc::KernelIr ir = kc::buildIr(def);
    return kc::compile(ir, compileOptions(cfg));
}

std::shared_ptr<const kc::CompiledKernel>
Device::compileCached(kc::KernelDef &def, const LaunchConfig &cfg) const
{
    const kc::KernelIr ir = kc::buildIr(def);
    return KernelCache::instance().getOrCompile(ir, compileOptions(cfg));
}

RunResult
Device::launch(kc::KernelDef &def, const LaunchConfig &cfg,
               const std::vector<Arg> &args)
{
    return launchCompiled(compileCached(def, cfg), cfg, args);
}

uint32_t
Device::heapStart() const
{
    return kHeapBase;
}

void
Device::writeArgBlock(const kc::CompiledKernel &compiled,
                      const std::vector<Arg> &args)
{
    const uint32_t arg_base = kc::argBlockAddress();
    const bool purecap = mode_ == kc::CompileOptions::Mode::Purecap;
    const bool soft = mode_ == kc::CompileOptions::Mode::SoftBounds;

    for (size_t p = 0; p < args.size(); ++p) {
        const kc::ParamSlot &slot = compiled.params[p];
        const Arg &arg = args[p];
        const uint32_t at = arg_base + slot.offset;
        if (slot.isPtr) {
            fatal_if(arg.kind != Arg::Kind::Buf,
                     "argument %zu of %s must be a buffer", p,
                     compiled.name.c_str());
            if (purecap) {
                // The host narrows a root-derived capability to the
                // buffer and stores it, tagged, into the block.
                cap::CapPipe c = cap::setAddr(cap::rootCap(), arg.buf.addr);
                c = cap::setBounds(c, arg.buf.bytes).cap;
                c = cap::andPerms(c, kDataPerms);
                dram().storeCap(at, cap::toMem(c));
            } else if (soft) {
                dram().store32(at, arg.buf.addr);
                dram().store32(at + 4, arg.buf.bytes / slot.elemBytes);
                dram().clearTagForStore(at, 8);
            } else {
                dram().store32(at, arg.buf.addr);
                dram().clearTagForStore(at, 4);
            }
        } else {
            uint32_t word;
            if (arg.kind == Arg::Kind::Float) {
                __builtin_memcpy(&word, &arg.f, 4);
            } else {
                word = static_cast<uint32_t>(arg.i);
            }
            dram().store32(at, word);
            dram().clearTagForStore(at, 4);
        }
    }
}

void
Device::installScrs(const kc::CompiledKernel &compiled,
                    const kc::CompileOptions &opts)
{
    if (mode_ != kc::CompileOptions::Mode::Purecap)
        return;
    cap::CapPipe stc =
        cap::setAddr(cap::rootCap(), kc::stackRegionBase(opts));
    stc = cap::setBounds(stc, opts.numThreads * opts.stackBytes).cap;
    stc = cap::andPerms(stc, kDataPerms);

    cap::CapPipe argc = cap::setAddr(cap::rootCap(), kc::argBlockAddress());
    argc = cap::setBounds(argc, compiled.paramBlockBytes).cap;
    argc = cap::andPerms(argc, cap::PERM_GLOBAL | cap::PERM_LOAD |
                                   cap::PERM_LOAD_CAP);

    for (auto &sm : sms_) {
        sm->setScr(isa::SCR_DDC, cap::rootCap());
        sm->setScr(isa::SCR_STC, stc);
        sm->setScr(isa::SCR_ARG, argc);
    }
}

// ---------------------------------------------------------------------
// Stepped (pausable / checkpointable) launches
// ---------------------------------------------------------------------

std::unique_ptr<SteppedLaunch>
Device::beginStepped(
    const std::shared_ptr<const kc::CompiledKernel> &compiled_ptr,
    const LaunchConfig &cfg, const std::vector<Arg> &args,
    const simt::FaultPlan *memory_fault)
{
    fatal_if(compiled_ptr == nullptr, "beginStepped without a kernel");
    const kc::CompiledKernel &compiled = *compiled_ptr;
    const kc::CompileOptions opts = compileOptions(cfg);

    fatal_if(cfg.blockDim < smCfg_.numLanes ||
                 cfg.blockDim % smCfg_.numLanes != 0,
             "blockDim must be a multiple of the warp size");
    fatal_if(cfg.blockDim > smCfg_.numThreads(),
             "blockDim exceeds the SM thread count");
    fatal_if(args.size() != compiled.params.size(),
             "kernel %s expects %zu arguments, got %zu",
             compiled.name.c_str(), compiled.params.size(), args.size());

    auto launch = std::unique_ptr<SteppedLaunch>(new SteppedLaunch(*this));
    launch->kernel_ = compiled_ptr;
    launch->kernelKey_ = support::strprintf(
        "%s|%016llx", compiled.name.c_str(),
        static_cast<unsigned long long>(compiled.fingerprint));
    launch->warpsPerBlock_ = cfg.blockDim / smCfg_.numLanes;

    // Undo snapshots must precede the writes they cover: the argument
    // block, then the fault word.
    for (uint32_t at = kc::argBlockAddress();
         at < kc::argBlockAddress() + compiled.paramBlockBytes; at += 4)
        launch->snapshotPageAt(at);
    writeArgBlock(compiled, args);

    const simt::FaultPlan &plan =
        memory_fault != nullptr ? *memory_fault : smCfg_.faultPlan;
    if (plan.memorySite()) {
        launch->snapshotPageAt(plan.addr & ~3u);
        if (simt::applyMemoryFault(plan, dram()))
            ++launch->memoryFaults_;
    }

    installScrs(compiled, opts);

    for (auto &sm : sms_) {
        sm->loadProgram(compiled.code);
        sm->setProgramKey(launch->kernelKey_);
        // Stepped launches start from a zeroed scratchpad, like a fresh
        // device: plain launches inherit whatever the previous kernel
        // left there, which would make delta-replayed fault sites
        // classify differently from fresh-device runs.
        sm->scratchpad().reset();
        sm->launch(0, launch->warpsPerBlock_);
    }

    memsys_->beginEpoch(numSms());
    for (unsigned k = 0; k < numSms(); ++k)
        sms_[k]->attachShard(&memsys_->shard(k));
    launch->epochOpen_ = true;
    launch->status_.assign(numSms(), simt::Sm::RunStatus::CycleLimit);
    return launch;
}

std::unique_ptr<SteppedLaunch>
Device::restoreStepped(const std::vector<uint8_t> &image,
                       simt::ckpt::Error *err,
                       const std::string &expect_kernel_key)
{
    namespace ckpt = simt::ckpt;
    const auto fail = [&](std::string why) -> std::unique_ptr<SteppedLaunch> {
        if (err != nullptr)
            *err = ckpt::Error::failure(std::move(why));
        return nullptr;
    };

    std::vector<ckpt::Section> sections;
    if (ckpt::Error e = ckpt::readImage(image, sections); !e)
        return fail(e.message);

    support::ByteReader hr(sections[0].payload.data(),
                           sections[0].payload.size());
    ckpt::Header header;
    if (!ckpt::readHeader(hr, header))
        return fail("checkpoint header is malformed");
    if (header.configHash != ckpt::configHash(smCfg_))
        return fail(support::strprintf(
            "checkpoint was taken under a different device configuration "
            "(config hash %016llx, this device %016llx)",
            static_cast<unsigned long long>(header.configHash),
            static_cast<unsigned long long>(ckpt::configHash(smCfg_))));
    if (header.numSms != numSms())
        return fail("checkpoint SM count mismatch");
    if (!expect_kernel_key.empty() && header.kernelKey != expect_kernel_key)
        return fail("checkpoint was taken for kernel '" + header.kernelKey +
                    "', expected '" + expect_kernel_key + "'");

    // Layout: Header, BaseMem, then (SmState, ShardState) per SM.
    const unsigned ns = numSms();
    if (sections.size() != 2 + 2 * static_cast<size_t>(ns) ||
        sections[1].id != ckpt::kSectionBaseMem)
        return fail("checkpoint image section layout mismatch");
    for (unsigned k = 0; k < ns; ++k) {
        if (sections[2 + 2 * k].id != ckpt::kSectionSmState ||
            sections[3 + 2 * k].id != ckpt::kSectionShardState)
            return fail("checkpoint image section layout mismatch");
    }

    support::ByteReader base_r(sections[1].payload.data(),
                               sections[1].payload.size());
    if (!dram().loadState(base_r))
        return fail("base memory restore failed: " + base_r.error());
    heapNext_ = header.heapNext;

    auto launch = std::unique_ptr<SteppedLaunch>(new SteppedLaunch(*this));
    launch->kernelKey_ = header.kernelKey;
    launch->warpsPerBlock_ = header.warpsPerBlock;
    launch->memoryFaults_ = header.memoryFaults;

    memsys_->beginEpoch(ns);
    launch->epochOpen_ = true;
    launch->status_.assign(ns, simt::Sm::RunStatus::CycleLimit);
    for (unsigned k = 0; k < ns; ++k) {
        simt::Sm &sm = *sms_[k];
        support::ByteReader sm_r(sections[2 + 2 * k].payload.data(),
                                 sections[2 + 2 * k].payload.size());
        if (!sm.loadState(sm_r)) {
            launch->detachShards();
            memsys_->endEpoch();
            return fail(support::strprintf("SM %u restore failed: ", k) +
                        sm_r.error());
        }
        support::ByteReader sh_r(sections[3 + 2 * k].payload.data(),
                                 sections[3 + 2 * k].payload.size());
        if (!memsys_->shard(k).loadState(sh_r)) {
            launch->detachShards();
            memsys_->endEpoch();
            return fail(support::strprintf("shard %u restore failed: ", k) +
                        sh_r.error());
        }
        sm.attachShard(&memsys_->shard(k));
        launch->status_[k] = sm.finished()
                                 ? simt::Sm::RunStatus::Completed
                                 : simt::Sm::RunStatus::CycleLimit;
    }
    if (err != nullptr)
        *err = ckpt::Error{};
    return launch;
}

SteppedLaunch::~SteppedLaunch()
{
    if (epochOpen_) {
        detachShards();
        dev_.memsys_->endEpoch();
        epochOpen_ = false;
    }
}

void
SteppedLaunch::detachShards()
{
    for (auto &sm : dev_.sms_)
        sm->attachShard(nullptr);
}

void
SteppedLaunch::snapshotPageAt(uint32_t addr)
{
    if (!simt::MainMemory::contains(addr))
        return;
    const uint32_t page =
        (addr - simt::kDramBase) >> simt::MemShard::kPageShift;
    if (undo_.count(page))
        return;
    const uint32_t base =
        simt::kDramBase + page * simt::MemShard::kPageBytes;
    UndoPage up;
    up.data.resize(simt::MemShard::kPageBytes);
    dev_.dram().copyOut(base, up.data.data(), simt::MemShard::kPageBytes);
    up.tags.resize(simt::MemShard::kPageWords);
    for (uint32_t wi = 0; wi < simt::MemShard::kPageWords; ++wi)
        up.tags[wi] = dev_.dram().wordTag(base + wi * 4) ? 1 : 0;
    undo_.emplace(page, std::move(up));
}

void
SteppedLaunch::snapshotTouchedPages()
{
    for (unsigned k = 0; k < dev_.memsys_->numShards(); ++k) {
        simt::MemShard &shard = dev_.memsys_->shard(k);
        for (size_t i = 0; i < shard.numTouchedPages(); ++i) {
            snapshotPageAt(simt::kDramBase +
                           shard.touchedPage(i) *
                               simt::MemShard::kPageBytes);
        }
    }
}

void
SteppedLaunch::runUntil(uint64_t stop_cycle)
{
    panic_if(finished_ || !epochOpen_,
             "runUntil on a finished stepped launch");
    for (unsigned k = 0; k < dev_.numSms(); ++k) {
        if (status_[k] == simt::Sm::RunStatus::CycleLimit)
            status_[k] = dev_.sms_[k]->runUntil(stop_cycle);
    }
}

bool
SteppedLaunch::done() const
{
    for (const simt::Sm::RunStatus st : status_) {
        if (st == simt::Sm::RunStatus::CycleLimit)
            return false;
    }
    return true;
}

uint64_t
SteppedLaunch::cycles() const
{
    uint64_t c = 0;
    for (const auto &sm : dev_.sms_)
        c = std::max(c, sm->cycles());
    return c;
}

std::vector<uint8_t>
SteppedLaunch::saveCheckpoint()
{
    namespace ckpt = simt::ckpt;
    panic_if(finished_ || !epochOpen_,
             "saveCheckpoint on a finished stepped launch");

    support::ByteWriter image;
    image.bytes(reinterpret_cast<const uint8_t *>(ckpt::kMagic),
                ckpt::kMagicLen);
    image.u32(ckpt::kVersion);

    {
        ckpt::Header header;
        header.configHash = ckpt::configHash(dev_.smCfg_);
        header.kernelKey = kernelKey_;
        header.numSms = dev_.numSms();
        header.warpsPerBlock = warpsPerBlock_;
        header.memoryFaults = memoryFaults_;
        header.heapNext = dev_.heapNext_;
        support::ByteWriter w;
        ckpt::writeHeader(w, header);
        ckpt::writeSection(image, ckpt::kSectionHeader, w.data());
    }
    {
        support::ByteWriter w;
        dev_.dram().saveState(w);
        ckpt::writeSection(image, ckpt::kSectionBaseMem, w.data());
    }
    for (unsigned k = 0; k < dev_.numSms(); ++k) {
        {
            support::ByteWriter w;
            dev_.sms_[k]->saveState(w);
            ckpt::writeSection(image, ckpt::kSectionSmState, w.data());
        }
        {
            support::ByteWriter w;
            dev_.memsys_->shard(k).saveState(w);
            ckpt::writeSection(image, ckpt::kSectionShardState, w.data());
        }
    }
    return image.take();
}

RunResult
SteppedLaunch::finish(uint64_t max_cycles)
{
    panic_if(finished_ || !epochOpen_,
             "finish on a finished stepped launch");
    finished_ = true;
    const unsigned ns = dev_.numSms();
    const auto t0 = std::chrono::steady_clock::now();

    // Run the unfinished SMs to the watchdog bound. SMs that already
    // completed or deadlocked during stepping are skipped: re-entering
    // run() on them would re-log their terminal condition.
    std::vector<uint8_t> completed(ns, 0);
    for (unsigned k = 0; k < ns; ++k) {
        switch (status_[k]) {
          case simt::Sm::RunStatus::Completed:
            completed[k] = 1;
            break;
          case simt::Sm::RunStatus::Deadlock:
            completed[k] = 0;
            break;
          case simt::Sm::RunStatus::CycleLimit:
            completed[k] = dev_.sms_[k]->run(max_cycles) ? 1 : 0;
            break;
        }
    }

    // Commit the epoch. Every base page about to be overwritten is
    // undo-snapshotted first, so restoreBase() stays an exact revert.
    snapshotTouchedPages();
    detachShards();
    const simt::MemorySystem::MergeReport merge =
        dev_.memsys_->commitEpoch();
    dev_.memsys_->endEpoch();
    epochOpen_ = false;

    RunResult res;
    res.numSms = ns;
    res.kernel = kernel_;

    if (merge.conflict) {
        res.mergeFallback = true;
        res.mergeFallbackReason = support::strprintf(
            "%s at 0x%08x", merge.reason, merge.conflictAddr);
        // The conflicting epoch committed nothing, so the base still
        // holds the argument block and the applied fault -- rerun the
        // SMs one at a time from it for exact sequential semantics.
        // Scratchpads revert to the launch's starting state (zeroed).
        for (unsigned k = 0; k < ns; ++k) {
            simt::Sm &sm = *dev_.sms_[k];
            dev_.memsys_->beginEpoch(1);
            sm.attachShard(&dev_.memsys_->shard(0));
            sm.scratchpad().reset();
            sm.launch(0, warpsPerBlock_);
            completed[k] = sm.run(max_cycles) ? 1 : 0;
            sm.attachShard(nullptr);
            snapshotTouchedPages();
            const auto rep = dev_.memsys_->commitEpoch();
            panic_if(rep.conflict, "single-shard epoch conflicted");
            dev_.memsys_->endEpoch();
        }
    }

    // ---- Aggregate per-SM results (mirrors Device::launchAttempt) ----
    if (ns == 1) {
        simt::Sm &sm = *dev_.sms_[0];
        res.completed = completed[0] != 0;
        res.trapped = sm.trapped();
        if (res.trapped) {
            res.trapKind = sm.firstTrap().kind;
            res.trapAddr = sm.firstTrap().addr;
            res.trapInfo = sm.firstTrap();
            res.trapSm = 0;
            if (res.trapKind == simt::TrapKind::WatchdogTimeout)
                res.watchdogFires = 1;
        }
        res.cycles = sm.cycles();
        res.stats = sm.stats();
        res.avgDataVrf = sm.avgDataVectorsInVrf();
        res.avgMetaVrf = sm.avgMetaVectorsInVrf();
        res.rfCapRegMask = sm.regfile().capRegMask();
        res.hostNs = sm.hostNanos();
        res.smCycles = {res.cycles};
        res.faultInjections = memoryFaults_ + sm.faultFires();
        return res;
    }

    res.completed = true;
    uint64_t cycles_sum = 0;
    double data_vrf_weighted = 0.0, meta_vrf_weighted = 0.0;
    for (unsigned k = 0; k < ns; ++k) {
        simt::Sm &sm = *dev_.sms_[k];
        res.completed = res.completed && completed[k];
        if (sm.trapped() && !res.trapped) {
            res.trapped = true;
            res.trapKind = sm.firstTrap().kind;
            res.trapAddr = sm.firstTrap().addr;
            res.trapInfo = sm.firstTrap();
            res.trapSm = k;
        }
        if (sm.trapped() &&
            sm.firstTrap().kind == simt::TrapKind::WatchdogTimeout)
            ++res.watchdogFires;
        res.faultInjections += sm.faultFires();
        res.smCycles.push_back(sm.cycles());
        res.cycles = std::max(res.cycles, sm.cycles());
        cycles_sum += sm.cycles();
        res.stats.merge(sm.stats());
        data_vrf_weighted +=
            sm.avgDataVectorsInVrf() * static_cast<double>(sm.cycles());
        meta_vrf_weighted +=
            sm.avgMetaVectorsInVrf() * static_cast<double>(sm.cycles());
        res.rfCapRegMask |= sm.regfile().capRegMask();
    }
    if (res.stats.has("cycles"))
        res.stats.set("cycles", res.cycles);
    res.stats.set("cycles_sum", cycles_sum);
    res.stats.set("merge_fallbacks", res.mergeFallback ? 1 : 0);
    if (cycles_sum > 0) {
        res.avgDataVrf =
            data_vrf_weighted / static_cast<double>(cycles_sum);
        res.avgMetaVrf =
            meta_vrf_weighted / static_cast<double>(cycles_sum);
    }
    res.hostNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    res.faultInjections += memoryFaults_;
    return res;
}

void
SteppedLaunch::restoreBase()
{
    if (epochOpen_) {
        // Abandoning an unfinished launch: the epoch committed nothing,
        // so only the pages written at begin (argument block, fault
        // word) need reverting.
        detachShards();
        dev_.memsys_->endEpoch();
        epochOpen_ = false;
        finished_ = true;
    }
    for (const auto &[page, up] : undo_) {
        const uint32_t base =
            simt::kDramBase + page * simt::MemShard::kPageBytes;
        std::memcpy(dev_.dram().rawData(base), up.data.data(),
                    simt::MemShard::kPageBytes);
        for (uint32_t wi = 0; wi < simt::MemShard::kPageWords; ++wi)
            dev_.dram().setWordTag(base + wi * 4, up.tags[wi] != 0);
    }
    undo_.clear();
}

RunResult
Device::launchCompiled(
    const std::shared_ptr<const kc::CompiledKernel> &compiled,
    const LaunchConfig &cfg, const std::vector<Arg> &args)
{
    return launchAttempt(compiled, cfg, args, 2'000'000'000ull,
                         /*defer_serial_fallback=*/false,
                         /*force_serial=*/false);
}

RunResult
Device::launchWithPolicy(kc::KernelDef &def, const LaunchConfig &cfg,
                         const std::vector<Arg> &args,
                         const LaunchPolicy &policy)
{
    return launchWithPolicy(compileCached(def, cfg), cfg, args, policy);
}

RunResult
Device::launchWithPolicy(
    const std::shared_ptr<const kc::CompiledKernel> &compiled,
    const LaunchConfig &cfg, const std::vector<Arg> &args,
    const LaunchPolicy &policy)
{
    // Snapshot the launch-visible DRAM (buffers + argument block) AND
    // every SM's scratchpad so a failed attempt can be replayed from
    // identical state. The scratchpad snapshot matters: Sm::launch()
    // deliberately preserves scratchpad contents (host-visible memory),
    // so a retry after a partial attempt would otherwise start from
    // whatever the failed attempt wrote there -- state silently
    // different from the first attempt's, and from what a replay of the
    // same fault site observes. MainMemory is a plain value type, so
    // that part is a straight copy.
    const simt::MainMemory snapshot = dram();
    support::ByteWriter spad_snapshot;
    for (auto &sm : sms_)
        sm->scratchpad().saveState(spad_snapshot);
    const auto restore_snapshot = [&] {
        dram() = snapshot;
        support::ByteReader r(spad_snapshot.data().data(),
                              spad_snapshot.size());
        for (auto &sm : sms_) {
            const bool ok = sm->scratchpad().loadState(r);
            panic_if(!ok, "scratchpad snapshot restore failed");
        }
    };

    const auto attempt = [&](bool force_serial) {
        return launchAttempt(compiled, cfg, args, policy.maxCycles,
                             /*defer_serial_fallback=*/!force_serial,
                             force_serial);
    };
    const auto needs_retry = [](const RunResult &r) {
        return (r.mergeFallback && !r.completed) ||
               (r.trapped &&
                r.trapKind == simt::TrapKind::WatchdogTimeout);
    };

    RunResult res = attempt(false);
    unsigned retries = 0;
    unsigned watchdog_total = res.watchdogFires;
    while (needs_retry(res) && retries < policy.maxRetries) {
        ++retries;
        if (trace_ != nullptr) {
            using namespace support::trace;
            support::trace::Buffer *buf = trace_->deviceBuffer();
            if (buf->wants(kCatWatchdog)) {
                buf->setNow(0);
                using support::json::Value;
                Event &e = buf->emit(EventKind::Instant, kCatWatchdog,
                                     "containment-retry");
                e.args.emplace_back("attempt", Value::integer(retries));
                e.args.emplace_back(
                    "reason",
                    Value::str(res.trapped ? "watchdog-timeout"
                                           : "merge-conflict"));
            }
        }
        restore_snapshot();
        res = attempt(false);
        watchdog_total += res.watchdogFires;
    }
    if (policy.degradeToSerial && numSms() > 1 && res.mergeFallback &&
        !res.completed &&
        !(res.trapped &&
          res.trapKind == simt::TrapKind::WatchdogTimeout)) {
        // Degradation is for merge conflicts only: a watchdog-stopped
        // launch would simply time out again in serial form.
        // Parallel execution keeps conflicting: give up on it and run
        // the SMs one at a time for exact sequential semantics.
        if (trace_ != nullptr) {
            using namespace support::trace;
            support::trace::Buffer *buf = trace_->deviceBuffer();
            if (buf->wants(kCatLaunch)) {
                buf->setNow(0);
                using support::json::Value;
                Event &e = buf->emit(EventKind::Instant, kCatLaunch,
                                     "degrade-to-serial");
                e.args.emplace_back(
                    "reason", Value::str(res.mergeFallbackReason));
            }
        }
        restore_snapshot();
        res = attempt(true);
        watchdog_total += res.watchdogFires;
        res.degraded = true;
    }
    res.retries = retries;
    res.watchdogFires = watchdog_total;
    return res;
}

RunResult
Device::launchAttempt(
    const std::shared_ptr<const kc::CompiledKernel> &compiled_ptr,
    const LaunchConfig &cfg, const std::vector<Arg> &args,
    uint64_t max_cycles, bool defer_serial_fallback, bool force_serial)
{
    fatal_if(compiled_ptr == nullptr, "launchCompiled without a kernel");
    const kc::CompiledKernel &compiled = *compiled_ptr;
    const kc::CompileOptions opts = compileOptions(cfg);

    fatal_if(cfg.blockDim < smCfg_.numLanes ||
                 cfg.blockDim % smCfg_.numLanes != 0,
             "blockDim must be a multiple of the warp size");
    fatal_if(cfg.blockDim > smCfg_.numThreads(),
             "blockDim exceeds the SM thread count");

    fatal_if(args.size() != compiled.params.size(),
             "kernel %s expects %zu arguments, got %zu",
             compiled.name.c_str(), compiled.params.size(), args.size());
    const unsigned num_slots = smCfg_.numThreads() / cfg.blockDim;
    fatal_if(static_cast<uint64_t>(compiled.sharedBytes) * num_slots >
                 simt::kSharedSize,
             "kernel %s: shared arrays (%u B x %u block slots) exceed the "
             "scratchpad",
             compiled.name.c_str(), compiled.sharedBytes, num_slots);

    // ---- Write the argument block ----
    const bool purecap = mode_ == kc::CompileOptions::Mode::Purecap;
    writeArgBlock(compiled, args);

    // ---- Memory-site fault injection ----
    //
    // Tag / DRAM-word faults are applied once, here, to the shared base
    // DRAM after the argument block is written: every SM (and every
    // `--sms` count) then observes the identical corrupted image, which
    // is what makes campaign classification SM-count-invariant. Runtime
    // sites are handled inside each Sm instead.
    unsigned memory_faults = 0;
    if (smCfg_.faultPlan.memorySite() &&
        simt::applyMemoryFault(smCfg_.faultPlan, dram()))
        ++memory_faults;

    // ---- Trace-session plumbing (observational only) ----
    //
    // The device runtime owns the sm = -1 buffer; the memory system
    // reports epoch commits into it. Per-SM buffers and profile scratch
    // are created here, on the control thread, before any worker spawns.
    support::trace::Buffer *devbuf = nullptr;
    if (trace_ != nullptr) {
        devbuf = trace_->deviceBuffer();
        devbuf->setNow(0);
        memsys_->attachTrace(devbuf);
        if (memory_faults > 0 &&
            devbuf->wants(support::trace::kCatFault)) {
            using support::json::Value;
            const char *site = simt::faultSiteName(smCfg_.faultPlan.site);
            support::trace::Event &e =
                devbuf->emit(support::trace::EventKind::Instant,
                             support::trace::kCatFault,
                             std::string("fault-apply: ") + site);
            e.args.emplace_back("site", Value::str(site));
            e.args.emplace_back(
                "addr", Value::str(support::strprintf(
                            "0x%08x", smCfg_.faultPlan.addr & ~3u)));
            e.args.emplace_back("bit",
                                Value::integer(smCfg_.faultPlan.bit));
        }
    }

    // Close out the attempt on the trace timeline: emit the launch span,
    // fold the profile scratch, and advance the track past this attempt.
    const auto trace_attempt_end = [&](const RunResult &res, bool serial) {
        if (trace_ == nullptr)
            return;
        using namespace support::trace;
        using support::json::Value;
        if (devbuf->wants(kCatLaunch)) {
            devbuf->setNow(0);
            Event &e = devbuf->emit(EventKind::Span, kCatLaunch,
                                    std::string("launch ") + compiled.name);
            e.dur = res.cycles;
            e.args.emplace_back("kernel", Value::str(compiled.name));
            e.args.emplace_back("sms", Value::integer(res.numSms));
            e.args.emplace_back("serial", Value::boolean(serial));
            e.args.emplace_back("completed",
                                Value::boolean(res.completed));
            e.args.emplace_back("trapped", Value::boolean(res.trapped));
        }
        if (trace_->profiling())
            trace_->setDisasm(disasmOf(compiled, purecap));
        trace_->foldProfile();
        memsys_->attachTrace(nullptr);
        trace_->commitAttempt(res.cycles);
    };

    // ---- Special capability registers (all SMs share them) ----
    installScrs(compiled, opts);

    const unsigned warps_per_block = cfg.blockDim / smCfg_.numLanes;

    // ---- Run ----
    if (smCfg_.numSms == 1) {
        // Single SM: the exact pre-sharding code path.
        simt::Sm &sm = *sms_[0];
        if (trace_ != nullptr)
            sm.attachTrace(trace_->smBuffer(0),
                           trace_->pcScratch(0, compiled.code.size()));
        sm.loadProgram(compiled.code);
        // Key the simulator's adaptive engine-decision cache with the
        // KernelCache identity, so every compilation of the same kernel
        // IR shares one decision (must precede launch(), which resolves
        // the engine).
        sm.setProgramKey(support::strprintf(
            "%s|%016llx", compiled.name.c_str(),
            static_cast<unsigned long long>(compiled.fingerprint)));
        sm.launch(0, warps_per_block);
        const bool completed = sm.run(max_cycles);

        RunResult res;
        res.completed = completed;
        res.trapped = sm.trapped();
        if (res.trapped) {
            res.trapKind = sm.firstTrap().kind;
            res.trapAddr = sm.firstTrap().addr;
            res.trapInfo = sm.firstTrap();
            res.trapSm = 0;
            if (res.trapKind == simt::TrapKind::WatchdogTimeout)
                res.watchdogFires = 1;
        }
        res.cycles = sm.cycles();
        res.stats = sm.stats();
        res.kernel = compiled_ptr;
        res.avgDataVrf = sm.avgDataVectorsInVrf();
        res.avgMetaVrf = sm.avgMetaVectorsInVrf();
        res.rfCapRegMask = sm.regfile().capRegMask();
        res.hostNs = sm.hostNanos();
        res.smCycles = {res.cycles};
        res.faultInjections = memory_faults + sm.faultFires();
        if (trace_ != nullptr) {
            sm.attachTrace(nullptr);
            trace_attempt_end(res, /*serial=*/false);
        }
        return res;
    }

    // Multi-SM: run every SM on its own host worker thread against a
    // private shard of the shared DRAM, then merge deterministically.
    // A cross-SM conflict aborts the merge (committing nothing) and the
    // launch is rerun serially, SM by SM, for exact sequential
    // semantics -- the same conservative gating as the hostFastPath.
    const unsigned ns = smCfg_.numSms;
    const auto t0 = std::chrono::steady_clock::now();

    for (auto &sm : sms_) {
        sm->loadProgram(compiled.code);
        sm->setProgramKey(support::strprintf(
            "%s|%016llx", compiled.name.c_str(),
            static_cast<unsigned long long>(compiled.fingerprint)));
    }
    if (trace_ != nullptr) {
        // Buffers and scratch must exist before the workers spawn; each
        // worker then only ever touches its own SM's buffer.
        for (unsigned k = 0; k < ns; ++k)
            sms_[k]->attachTrace(
                trace_->smBuffer(k),
                trace_->pcScratch(k, compiled.code.size()));
    }

    std::vector<uint8_t> completed(ns, 0);
    RunResult res;
    res.numSms = ns;
    res.kernel = compiled_ptr;

    bool run_serially = force_serial;
    bool aborted = false;
    if (!force_serial) {
        memsys_->beginEpoch(ns);
        {
            std::vector<std::thread> workers;
            workers.reserve(ns);
            for (unsigned k = 0; k < ns; ++k) {
                workers.emplace_back([&, k] {
                    sms_[k]->attachShard(&memsys_->shard(k));
                    sms_[k]->launch(0, warps_per_block);
                    completed[k] = sms_[k]->run(max_cycles) ? 1 : 0;
                    sms_[k]->attachShard(nullptr);
                });
            }
            for (auto &w : workers)
                w.join();
        }
        if (devbuf != nullptr) {
            // Stamp the epoch-commit event at the slowest SM's finish.
            uint64_t max_c = 0;
            for (auto &sm : sms_)
                max_c = std::max(max_c, sm->cycles());
            devbuf->setNow(max_c);
        }
        const simt::MemorySystem::MergeReport merge =
            memsys_->commitEpoch();
        memsys_->endEpoch();

        if (merge.conflict) {
            res.mergeFallback = true;
            res.mergeFallbackReason = support::strprintf(
                "%s at 0x%08x", merge.reason, merge.conflictAddr);
            if (defer_serial_fallback) {
                // The conflicting epoch committed nothing; leave the
                // launch incomplete and let the caller's policy decide
                // between retry and serial degradation.
                aborted = true;
            } else {
                run_serially = true;
            }
        }
    }

    if (run_serially) {
        // Serial execution: one SM at a time, each in its own
        // single-shard epoch (a single shard can never conflict, so
        // its commit applies everything), giving exact sequential
        // semantics on the shared DRAM.
        for (unsigned k = 0; k < ns; ++k) {
            memsys_->beginEpoch(1);
            sms_[k]->attachShard(&memsys_->shard(0));
            sms_[k]->launch(0, warps_per_block);
            completed[k] = sms_[k]->run(max_cycles) ? 1 : 0;
            sms_[k]->attachShard(nullptr);
            if (devbuf != nullptr)
                devbuf->setNow(sms_[k]->cycles());
            const auto rep = memsys_->commitEpoch();
            panic_if(rep.conflict, "single-shard epoch conflicted");
            memsys_->endEpoch();
        }
    }

    // ---- Aggregate per-SM results ----
    res.completed = true;
    uint64_t cycles_sum = 0;
    double data_vrf_weighted = 0.0, meta_vrf_weighted = 0.0;
    for (unsigned k = 0; k < ns; ++k) {
        simt::Sm &sm = *sms_[k];
        res.completed = res.completed && completed[k];
        if (sm.trapped() && !res.trapped) {
            // Deterministic choice: the lowest-numbered trapped SM.
            res.trapped = true;
            res.trapKind = sm.firstTrap().kind;
            res.trapAddr = sm.firstTrap().addr;
            res.trapInfo = sm.firstTrap();
            res.trapSm = k;
        }
        if (sm.trapped() &&
            sm.firstTrap().kind == simt::TrapKind::WatchdogTimeout)
            ++res.watchdogFires;
        res.faultInjections += sm.faultFires();
        res.smCycles.push_back(sm.cycles());
        res.cycles = std::max(res.cycles, sm.cycles());
        cycles_sum += sm.cycles();
        res.stats.merge(sm.stats());
        data_vrf_weighted +=
            sm.avgDataVectorsInVrf() * static_cast<double>(sm.cycles());
        meta_vrf_weighted +=
            sm.avgMetaVectorsInVrf() * static_cast<double>(sm.cycles());
        res.rfCapRegMask |= sm.regfile().capRegMask();
    }
    if (res.stats.has("cycles"))
        res.stats.set("cycles", res.cycles);
    res.stats.set("cycles_sum", cycles_sum);
    res.stats.set("merge_fallbacks", res.mergeFallback ? 1 : 0);
    if (cycles_sum > 0) {
        res.avgDataVrf =
            data_vrf_weighted / static_cast<double>(cycles_sum);
        res.avgMetaVrf =
            meta_vrf_weighted / static_cast<double>(cycles_sum);
    }
    res.hostNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    res.faultInjections += memory_faults;
    if (aborted)
        res.completed = false;
    if (trace_ != nullptr) {
        for (auto &sm : sms_)
            sm->attachTrace(nullptr);
        trace_attempt_end(res, run_serially);
    }
    return res;
}

} // namespace nocl
