/**
 * @file
 * The NoCL host runtime: device-memory management, kernel-argument
 * marshalling and kernel launch for the simulated SIMTight SoC.
 *
 * Mirrors the NoCL library of the paper: the host (a CHERI-enabled CPU in
 * the paper's SoC) allocates buffers, sets the bounds of dynamically
 * allocated memory and of the stack, writes the argument block, and
 * launches the kernel. In pure-capability mode arguments are stored as
 * tagged capabilities and the special capability registers (DDC, stack
 * root, argument block) are installed before the kernel starts.
 */

#ifndef CHERI_SIMT_NOCL_NOCL_HPP_
#define CHERI_SIMT_NOCL_NOCL_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kc/codegen.hpp"
#include "kc/kernel.hpp"
#include "simt/checkpoint.hpp"
#include "simt/sm.hpp"

namespace support
{
namespace trace
{
class Session;
} // namespace trace
} // namespace support

namespace nocl
{

/** A device buffer handle. */
struct Buffer
{
    uint32_t addr = 0;
    uint32_t bytes = 0;
};

/** A kernel argument: a scalar or a buffer. */
struct Arg
{
    enum class Kind { Int, Float, Buf } kind = Kind::Int;
    int32_t i = 0;
    float f = 0.0f;
    Buffer buf;

    static Arg
    integer(int32_t v)
    {
        Arg a;
        a.kind = Kind::Int;
        a.i = v;
        return a;
    }

    static Arg
    real(float v)
    {
        Arg a;
        a.kind = Kind::Float;
        a.f = v;
        return a;
    }

    static Arg
    buffer(Buffer b)
    {
        Arg a;
        a.kind = Kind::Buf;
        a.buf = b;
        return a;
    }
};

/** Launch geometry. */
struct LaunchConfig
{
    unsigned blockDim = 256;
    unsigned gridDim = 1;

    /** Capability-register limit passed to the compiler (0 = off). */
    unsigned capRegLimit = 0;
};

/**
 * Containment policy for launchWithPolicy: a cycle watchdog plus a
 * bounded retry/degradation ladder. A kernel that exceeds maxCycles is
 * stopped and surfaces a watchdog-timeout structured trap instead of
 * hanging the host. A launch that cannot be contained in parallel form
 * (a watchdog fire, or a cross-SM merge conflict) is retried from a
 * DRAM snapshot up to maxRetries times; a still-conflicting multi-SM
 * launch then degrades to exact serial execution when degradeToSerial
 * is set.
 */
struct LaunchPolicy
{
    uint64_t maxCycles = 2'000'000'000ull;
    unsigned maxRetries = 1;
    bool degradeToSerial = true;
};

/** Result of one kernel launch. */
struct RunResult
{
    bool completed = false;
    bool trapped = false;
    simt::TrapKind trapKind = simt::TrapKind::None;
    uint32_t trapAddr = 0;

    /** Full forensic record of the winning trap (the lowest trapped
     *  SM's first trap), and which SM raised it. */
    simt::TrapInfo trapInfo;
    unsigned trapSm = 0;

    /** Modelled cycles: the slowest SM of the launch (max over SMs). */
    uint64_t cycles = 0;

    /** Merged stats; for numSms > 1 counters are summed over the SMs,
     *  "cycles" is the max and "cycles_sum" the sum. */
    support::StatSet stats;

    /** SMs the launch ran on, and each SM's own cycle count. */
    unsigned numSms = 1;
    std::vector<uint64_t> smCycles;

    /**
     * A parallel launch hit a cross-SM conflict (or another condition
     * the deterministic merge cannot handle) and was rerun serially.
     * Architectural results are still exact; only host time suffers.
     */
    bool mergeFallback = false;
    std::string mergeFallbackReason;

    // ---- Containment / fault-injection accounting ----

    /** Retries launchWithPolicy spent before this (final) attempt. */
    unsigned retries = 0;

    /** Watchdog-timeout traps observed across all attempts. */
    unsigned watchdogFires = 0;

    /** launchWithPolicy gave up on parallel execution and ran serially. */
    bool degraded = false;

    /** Injected faults that actually fired (memory sites applied at
     *  launch plus runtime sites that triggered during execution). */
    uint64_t faultInjections = 0;

    /**
     * The code that ran. Shared, not owned: cached compilations are
     * reused across runs (and threads) without copying the image.
     */
    std::shared_ptr<const kc::CompiledKernel> kernel;

    double avgDataVrf = 0.0; ///< time-averaged data vectors in the VRF
    double avgMetaVrf = 0.0; ///< time-averaged metadata vectors in the VRF
    uint32_t rfCapRegMask = 0; ///< registers observed holding capabilities

    /** Host wall-clock nanoseconds spent simulating this launch. Kept out
     *  of @ref stats so modelled counters stay machine-independent. */
    uint64_t hostNs = 0;
};

class Device;

/**
 * An in-flight kernel launch that can be advanced in bounded cycle
 * chunks, checkpointed at any chunk boundary, and resumed or finished
 * later -- the foundation of the deterministic checkpoint/restore layer
 * (DESIGN.md section 13) and of fork-from-state fault campaigns.
 *
 * A stepped launch always runs its SMs against copy-on-write MemShard
 * overlays of the base DRAM (even with one SM, where shard routing is
 * architecturally transparent), so the base memory stays untouched until
 * finish() commits the epoch. Together with page-granular undo snapshots
 * of every base page the launch modifies, this makes restoreBase() an
 * exact revert to the device's pre-launch memory state -- the campaign
 * runs thousands of fault sites as cheap deltas off one prepared device.
 *
 * Chunk boundaries are warp-instruction boundaries (simt::Sm::runUntil),
 * so a launch advanced by any sequence of runUntil() calls and then
 * finish()ed is bit-identical -- cycles, traps, stats, memory -- to one
 * finished in a single call, across all execute engines and SM counts.
 *
 * Obtain instances from Device::beginStepped (a fresh launch) or
 * Device::restoreStepped (from a checkpoint image). At most one stepped
 * launch may be in flight per device, and it must not outlive the
 * device.
 */
class SteppedLaunch
{
  public:
    ~SteppedLaunch();
    SteppedLaunch(const SteppedLaunch &) = delete;
    SteppedLaunch &operator=(const SteppedLaunch &) = delete;

    /** Advance every unfinished SM to cycle @p stop_cycle (serially, in
     *  SM index order; shard isolation makes this equivalent to the
     *  threaded parallel epoch). */
    void runUntil(uint64_t stop_cycle);

    /** Every SM has completed (or deadlocked): finish() will not
     *  execute further instructions. */
    bool done() const;

    /** Slowest SM's cycle count so far. */
    uint64_t cycles() const;

    /**
     * Run the remaining SMs to completion with @p max_cycles as the
     * watchdog bound (absolute cycle count, as in LaunchPolicy), commit
     * the epoch, and aggregate per-SM results exactly as a plain launch
     * does -- including the serial single-shard fallback on a cross-SM
     * merge conflict. May be called once.
     */
    RunResult finish(uint64_t max_cycles);

    /**
     * Serialize the complete in-flight launch -- header, base DRAM, every
     * SM's state, every shard overlay -- into a versioned checkpoint
     * image (see simt/checkpoint.hpp for the container format).
     */
    std::vector<uint8_t> saveCheckpoint();

    /**
     * Revert the base DRAM to its pre-launch contents from the undo
     * snapshots (argument block, applied fault word, and every page the
     * epoch commit touched). Abandons the epoch first if the launch was
     * never finished. The device is then ready for the next
     * beginStepped() -- the delta-execution loop of the fault campaign.
     */
    void restoreBase();

  private:
    friend class Device;

    explicit SteppedLaunch(Device &dev) : dev_(dev) {}

    /** Save the base page containing @p addr into the undo log. */
    void snapshotPageAt(uint32_t addr);

    /** Save every base page the open epoch's shards touched. */
    void snapshotTouchedPages();

    void detachShards();

    struct UndoPage
    {
        std::vector<uint8_t> data;
        std::vector<uint8_t> tags; ///< one byte per 32-bit word
    };

    Device &dev_;
    std::shared_ptr<const kc::CompiledKernel> kernel_; ///< null on restore
    std::string kernelKey_; ///< "name|fingerprint" (checkpoint header)
    unsigned warpsPerBlock_ = 1;
    unsigned memoryFaults_ = 0; ///< memory-site faults applied at begin
    bool epochOpen_ = false;
    bool finished_ = false;
    std::vector<simt::Sm::RunStatus> status_;
    std::map<uint32_t, UndoPage> undo_; ///< page index -> saved contents
};

/**
 * Process-wide kernel-compilation cache, keyed by the kernel's structural
 * IR fingerprint plus every compile option that affects code generation
 * (mode, launch geometry, thread count, stack layout, capRegLimit).
 * Thread-safe: benchmark sweeps recompile each kernel once rather than
 * once per sweep point, from any number of runner threads.
 */
class KernelCache
{
  public:
    static KernelCache &instance();

    /** Return the cached compilation for (ir, opts), compiling on miss. */
    std::shared_ptr<const kc::CompiledKernel>
    getOrCompile(const kc::KernelIr &ir, const kc::CompileOptions &opts);

    uint64_t hits() const;
    uint64_t misses() const;
    size_t size() const;
    void clear();

  private:
    KernelCache() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<const kc::CompiledKernel>>
        entries_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/**
 * A simulated device: SmConfig::numSms streaming multiprocessors sharing
 * one DRAM (plus host-side memory management). Thread blocks of a launch
 * are sharded round-robin across the SMs by the persistent-threads
 * dispatch loop; with more than one SM each runs on its own host worker
 * thread against a private simt::MemShard, and the shards are merged
 * deterministically when all SMs finish (see simt/memsys.hpp).
 */
class Device
{
  public:
    Device(const simt::SmConfig &sm_cfg, kc::CompileOptions::Mode mode);

    /** SM 0 (the only SM when numSms == 1). */
    simt::Sm &sm() { return *sms_[0]; }

    simt::Sm &smAt(unsigned i) { return *sms_.at(i); }
    unsigned numSms() const { return static_cast<unsigned>(sms_.size()); }

    /** The device's shared main memory (owned by SM 0). */
    simt::MainMemory &dram() { return memsys_->base(); }
    const simt::MainMemory &dram() const { return memsys_->base(); }

    kc::CompileOptions::Mode mode() const { return mode_; }

    /** Allocate a device buffer (zero-initialised). */
    Buffer alloc(uint32_t bytes);

    /** Host writes into a buffer. */
    void write8(const Buffer &b, const std::vector<uint8_t> &data);
    void write32(const Buffer &b, const std::vector<uint32_t> &data);
    void writeF32(const Buffer &b, const std::vector<float> &data);

    /** Host reads from a buffer. */
    std::vector<uint8_t> read8(const Buffer &b) const;
    std::vector<uint32_t> read32(const Buffer &b) const;
    std::vector<float> readF32(const Buffer &b) const;

    /**
     * Compile and run a kernel. Arguments must match the kernel's
     * declared parameters in order and kind. Compilation goes through
     * the process-wide KernelCache.
     */
    RunResult launch(kc::KernelDef &def, const LaunchConfig &cfg,
                     const std::vector<Arg> &args);

    /**
     * Compile @p def for this device via the KernelCache (reusing a
     * previous identical compilation when present).
     */
    std::shared_ptr<const kc::CompiledKernel>
    compileCached(kc::KernelDef &def, const LaunchConfig &cfg) const;

    /**
     * Run an already-compiled kernel. @p compiled must have been
     * produced for this device's mode and for launch geometry matching
     * @p cfg (compileCached guarantees both).
     */
    RunResult
    launchCompiled(const std::shared_ptr<const kc::CompiledKernel> &compiled,
                   const LaunchConfig &cfg, const std::vector<Arg> &args);

    /**
     * Launch under a containment policy: a watchdog bounds the cycle
     * count, failed attempts (watchdog fire, or a multi-SM merge
     * conflict) are retried from a DRAM snapshot, and a repeatedly
     * conflicting parallel launch degrades to serial execution. The
     * result carries retries / watchdogFires / degraded for reporting.
     */
    RunResult launchWithPolicy(
        const std::shared_ptr<const kc::CompiledKernel> &compiled,
        const LaunchConfig &cfg, const std::vector<Arg> &args,
        const LaunchPolicy &policy = LaunchPolicy{});

    RunResult launchWithPolicy(kc::KernelDef &def, const LaunchConfig &cfg,
                               const std::vector<Arg> &args,
                               const LaunchPolicy &policy = LaunchPolicy{});

    /**
     * Begin a stepped (pausable / checkpointable) launch of an
     * already-compiled kernel. Performs the same preparation as a plain
     * launch -- argument block, memory-site fault, SCRs, program load --
     * then leaves the SMs launched but not yet run; drive them with
     * SteppedLaunch::runUntil / finish. Stepped launches always start
     * from a zeroed scratchpad (like a fresh device), so a fault site
     * replayed as a delta classifies identically to a fresh-device run.
     *
     * @p memory_fault, when non-null, replaces the config's fault plan
     * for the launch-time memory-site corruption (tag clear / DRAM word
     * flip applied to the base image); runtime structure-site faults
     * still come from the config the SMs were built with.
     */
    std::unique_ptr<SteppedLaunch> beginStepped(
        const std::shared_ptr<const kc::CompiledKernel> &compiled,
        const LaunchConfig &cfg, const std::vector<Arg> &args,
        const simt::FaultPlan *memory_fault = nullptr);

    /**
     * Rebuild an in-flight stepped launch from a checkpoint image taken
     * by SteppedLaunch::saveCheckpoint. Refuses -- with a structured
     * error in @p err and no simulator state touched -- images that are
     * corrupt (bad magic / version / CRC), taken under a different
     * device configuration (SmConfig hash mismatch), or, when
     * @p expect_kernel_key is non-empty, taken for a different kernel.
     * On success the device's base DRAM, heap watermark, SM states and
     * shard overlays are restored and the returned launch continues
     * bit-identically to the checkpointed one.
     */
    std::unique_ptr<SteppedLaunch>
    restoreStepped(const std::vector<uint8_t> &image,
                   simt::ckpt::Error *err,
                   const std::string &expect_kernel_key = std::string());

    /** Compile without running (for inspecting generated code). */
    kc::CompiledKernel compileOnly(kc::KernelDef &def,
                                   const LaunchConfig &cfg) const;

    /** Bounds of the device heap: [heapStart, heapEnd) covers every
     *  buffer handed out by alloc() so far (campaign output hashing). */
    uint32_t heapStart() const;
    uint32_t heapEnd() const { return heapNext_; }

    /**
     * Attach (or detach, with nullptr) a trace/profile session. While
     * attached, every launch records lifecycle / epoch / trap / fault
     * events into the session's buffers (merged in SM-index order at
     * each attempt commit) and, when the session profiles, per-PC
     * instruction histograms. Observational only: architectural results
     * are bit-identical with or without a session attached. The caller
     * keeps ownership and must beginTrack() before launches it wants
     * grouped under a named track.
     */
    void attachTraceSession(support::trace::Session *session)
    {
        trace_ = session;
    }

  private:
    friend class SteppedLaunch;

    kc::CompileOptions compileOptions(const LaunchConfig &cfg) const;

    /** Write the kernel-argument block for @p args into the base DRAM
     *  (shared by plain and stepped launches). */
    void writeArgBlock(const kc::CompiledKernel &compiled,
                       const std::vector<Arg> &args);

    /** Install the special capability registers on every SM (pure-
     *  capability mode; no-op otherwise). */
    void installScrs(const kc::CompiledKernel &compiled,
                     const kc::CompileOptions &opts);

    /**
     * One launch attempt. @p defer_serial_fallback leaves a conflicting
     * multi-SM epoch uncommitted (completed = false) instead of
     * rerunning serially; @p force_serial skips the parallel epoch and
     * runs the SMs one at a time for exact sequential semantics.
     */
    RunResult launchAttempt(
        const std::shared_ptr<const kc::CompiledKernel> &compiled,
        const LaunchConfig &cfg, const std::vector<Arg> &args,
        uint64_t max_cycles, bool defer_serial_fallback, bool force_serial);

    simt::SmConfig smCfg_;
    kc::CompileOptions::Mode mode_;
    std::vector<std::unique_ptr<simt::Sm>> sms_;
    std::unique_ptr<simt::MemorySystem> memsys_;
    uint32_t heapNext_ = 0;
    uint32_t heapLimit_ = 0;
    support::trace::Session *trace_ = nullptr;
};

} // namespace nocl

#endif // CHERI_SIMT_NOCL_NOCL_HPP_
