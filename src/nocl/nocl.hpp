/**
 * @file
 * The NoCL host runtime: device-memory management, kernel-argument
 * marshalling and kernel launch for the simulated SIMTight SoC.
 *
 * Mirrors the NoCL library of the paper: the host (a CHERI-enabled CPU in
 * the paper's SoC) allocates buffers, sets the bounds of dynamically
 * allocated memory and of the stack, writes the argument block, and
 * launches the kernel. In pure-capability mode arguments are stored as
 * tagged capabilities and the special capability registers (DDC, stack
 * root, argument block) are installed before the kernel starts.
 */

#ifndef CHERI_SIMT_NOCL_NOCL_HPP_
#define CHERI_SIMT_NOCL_NOCL_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kc/codegen.hpp"
#include "kc/kernel.hpp"
#include "simt/sm.hpp"

namespace support
{
namespace trace
{
class Session;
} // namespace trace
} // namespace support

namespace nocl
{

/** A device buffer handle. */
struct Buffer
{
    uint32_t addr = 0;
    uint32_t bytes = 0;
};

/** A kernel argument: a scalar or a buffer. */
struct Arg
{
    enum class Kind { Int, Float, Buf } kind = Kind::Int;
    int32_t i = 0;
    float f = 0.0f;
    Buffer buf;

    static Arg
    integer(int32_t v)
    {
        Arg a;
        a.kind = Kind::Int;
        a.i = v;
        return a;
    }

    static Arg
    real(float v)
    {
        Arg a;
        a.kind = Kind::Float;
        a.f = v;
        return a;
    }

    static Arg
    buffer(Buffer b)
    {
        Arg a;
        a.kind = Kind::Buf;
        a.buf = b;
        return a;
    }
};

/** Launch geometry. */
struct LaunchConfig
{
    unsigned blockDim = 256;
    unsigned gridDim = 1;

    /** Capability-register limit passed to the compiler (0 = off). */
    unsigned capRegLimit = 0;
};

/**
 * Containment policy for launchWithPolicy: a cycle watchdog plus a
 * bounded retry/degradation ladder. A kernel that exceeds maxCycles is
 * stopped and surfaces a watchdog-timeout structured trap instead of
 * hanging the host. A launch that cannot be contained in parallel form
 * (a watchdog fire, or a cross-SM merge conflict) is retried from a
 * DRAM snapshot up to maxRetries times; a still-conflicting multi-SM
 * launch then degrades to exact serial execution when degradeToSerial
 * is set.
 */
struct LaunchPolicy
{
    uint64_t maxCycles = 2'000'000'000ull;
    unsigned maxRetries = 1;
    bool degradeToSerial = true;
};

/** Result of one kernel launch. */
struct RunResult
{
    bool completed = false;
    bool trapped = false;
    simt::TrapKind trapKind = simt::TrapKind::None;
    uint32_t trapAddr = 0;

    /** Full forensic record of the winning trap (the lowest trapped
     *  SM's first trap), and which SM raised it. */
    simt::TrapInfo trapInfo;
    unsigned trapSm = 0;

    /** Modelled cycles: the slowest SM of the launch (max over SMs). */
    uint64_t cycles = 0;

    /** Merged stats; for numSms > 1 counters are summed over the SMs,
     *  "cycles" is the max and "cycles_sum" the sum. */
    support::StatSet stats;

    /** SMs the launch ran on, and each SM's own cycle count. */
    unsigned numSms = 1;
    std::vector<uint64_t> smCycles;

    /**
     * A parallel launch hit a cross-SM conflict (or another condition
     * the deterministic merge cannot handle) and was rerun serially.
     * Architectural results are still exact; only host time suffers.
     */
    bool mergeFallback = false;
    std::string mergeFallbackReason;

    // ---- Containment / fault-injection accounting ----

    /** Retries launchWithPolicy spent before this (final) attempt. */
    unsigned retries = 0;

    /** Watchdog-timeout traps observed across all attempts. */
    unsigned watchdogFires = 0;

    /** launchWithPolicy gave up on parallel execution and ran serially. */
    bool degraded = false;

    /** Injected faults that actually fired (memory sites applied at
     *  launch plus runtime sites that triggered during execution). */
    uint64_t faultInjections = 0;

    /**
     * The code that ran. Shared, not owned: cached compilations are
     * reused across runs (and threads) without copying the image.
     */
    std::shared_ptr<const kc::CompiledKernel> kernel;

    double avgDataVrf = 0.0; ///< time-averaged data vectors in the VRF
    double avgMetaVrf = 0.0; ///< time-averaged metadata vectors in the VRF
    uint32_t rfCapRegMask = 0; ///< registers observed holding capabilities

    /** Host wall-clock nanoseconds spent simulating this launch. Kept out
     *  of @ref stats so modelled counters stay machine-independent. */
    uint64_t hostNs = 0;
};

/**
 * Process-wide kernel-compilation cache, keyed by the kernel's structural
 * IR fingerprint plus every compile option that affects code generation
 * (mode, launch geometry, thread count, stack layout, capRegLimit).
 * Thread-safe: benchmark sweeps recompile each kernel once rather than
 * once per sweep point, from any number of runner threads.
 */
class KernelCache
{
  public:
    static KernelCache &instance();

    /** Return the cached compilation for (ir, opts), compiling on miss. */
    std::shared_ptr<const kc::CompiledKernel>
    getOrCompile(const kc::KernelIr &ir, const kc::CompileOptions &opts);

    uint64_t hits() const;
    uint64_t misses() const;
    size_t size() const;
    void clear();

  private:
    KernelCache() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<const kc::CompiledKernel>>
        entries_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/**
 * A simulated device: SmConfig::numSms streaming multiprocessors sharing
 * one DRAM (plus host-side memory management). Thread blocks of a launch
 * are sharded round-robin across the SMs by the persistent-threads
 * dispatch loop; with more than one SM each runs on its own host worker
 * thread against a private simt::MemShard, and the shards are merged
 * deterministically when all SMs finish (see simt/memsys.hpp).
 */
class Device
{
  public:
    Device(const simt::SmConfig &sm_cfg, kc::CompileOptions::Mode mode);

    /** SM 0 (the only SM when numSms == 1). */
    simt::Sm &sm() { return *sms_[0]; }

    simt::Sm &smAt(unsigned i) { return *sms_.at(i); }
    unsigned numSms() const { return static_cast<unsigned>(sms_.size()); }

    /** The device's shared main memory (owned by SM 0). */
    simt::MainMemory &dram() { return memsys_->base(); }
    const simt::MainMemory &dram() const { return memsys_->base(); }

    kc::CompileOptions::Mode mode() const { return mode_; }

    /** Allocate a device buffer (zero-initialised). */
    Buffer alloc(uint32_t bytes);

    /** Host writes into a buffer. */
    void write8(const Buffer &b, const std::vector<uint8_t> &data);
    void write32(const Buffer &b, const std::vector<uint32_t> &data);
    void writeF32(const Buffer &b, const std::vector<float> &data);

    /** Host reads from a buffer. */
    std::vector<uint8_t> read8(const Buffer &b) const;
    std::vector<uint32_t> read32(const Buffer &b) const;
    std::vector<float> readF32(const Buffer &b) const;

    /**
     * Compile and run a kernel. Arguments must match the kernel's
     * declared parameters in order and kind. Compilation goes through
     * the process-wide KernelCache.
     */
    RunResult launch(kc::KernelDef &def, const LaunchConfig &cfg,
                     const std::vector<Arg> &args);

    /**
     * Compile @p def for this device via the KernelCache (reusing a
     * previous identical compilation when present).
     */
    std::shared_ptr<const kc::CompiledKernel>
    compileCached(kc::KernelDef &def, const LaunchConfig &cfg) const;

    /**
     * Run an already-compiled kernel. @p compiled must have been
     * produced for this device's mode and for launch geometry matching
     * @p cfg (compileCached guarantees both).
     */
    RunResult
    launchCompiled(const std::shared_ptr<const kc::CompiledKernel> &compiled,
                   const LaunchConfig &cfg, const std::vector<Arg> &args);

    /**
     * Launch under a containment policy: a watchdog bounds the cycle
     * count, failed attempts (watchdog fire, or a multi-SM merge
     * conflict) are retried from a DRAM snapshot, and a repeatedly
     * conflicting parallel launch degrades to serial execution. The
     * result carries retries / watchdogFires / degraded for reporting.
     */
    RunResult launchWithPolicy(
        const std::shared_ptr<const kc::CompiledKernel> &compiled,
        const LaunchConfig &cfg, const std::vector<Arg> &args,
        const LaunchPolicy &policy = LaunchPolicy{});

    RunResult launchWithPolicy(kc::KernelDef &def, const LaunchConfig &cfg,
                               const std::vector<Arg> &args,
                               const LaunchPolicy &policy = LaunchPolicy{});

    /** Compile without running (for inspecting generated code). */
    kc::CompiledKernel compileOnly(kc::KernelDef &def,
                                   const LaunchConfig &cfg) const;

    /** Bounds of the device heap: [heapStart, heapEnd) covers every
     *  buffer handed out by alloc() so far (campaign output hashing). */
    uint32_t heapStart() const;
    uint32_t heapEnd() const { return heapNext_; }

    /**
     * Attach (or detach, with nullptr) a trace/profile session. While
     * attached, every launch records lifecycle / epoch / trap / fault
     * events into the session's buffers (merged in SM-index order at
     * each attempt commit) and, when the session profiles, per-PC
     * instruction histograms. Observational only: architectural results
     * are bit-identical with or without a session attached. The caller
     * keeps ownership and must beginTrack() before launches it wants
     * grouped under a named track.
     */
    void attachTraceSession(support::trace::Session *session)
    {
        trace_ = session;
    }

  private:
    kc::CompileOptions compileOptions(const LaunchConfig &cfg) const;

    /**
     * One launch attempt. @p defer_serial_fallback leaves a conflicting
     * multi-SM epoch uncommitted (completed = false) instead of
     * rerunning serially; @p force_serial skips the parallel epoch and
     * runs the SMs one at a time for exact sequential semantics.
     */
    RunResult launchAttempt(
        const std::shared_ptr<const kc::CompiledKernel> &compiled,
        const LaunchConfig &cfg, const std::vector<Arg> &args,
        uint64_t max_cycles, bool defer_serial_fallback, bool force_serial);

    simt::SmConfig smCfg_;
    kc::CompileOptions::Mode mode_;
    std::vector<std::unique_ptr<simt::Sm>> sms_;
    std::unique_ptr<simt::MemorySystem> memsys_;
    uint32_t heapNext_ = 0;
    uint32_t heapLimit_ = 0;
    support::trace::Session *trace_ = nullptr;
};

} // namespace nocl

#endif // CHERI_SIMT_NOCL_NOCL_HPP_
