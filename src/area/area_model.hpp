/**
 * @file
 * Analytical logic-area and on-chip-storage model of the SIMTight SM,
 * reproducing the paper's synthesis results (Table 3) and the
 * CheriCapLib function costs (Figure 7).
 *
 * The model composes per-component ALM counts: per-vector-lane logic is
 * multiplied by the lane count, per-warp logic by the warp count, and
 * shared units (scheduler, coalescer, SFU, tag controller) appear once.
 * The CHERI deltas follow the paper's design directly:
 *
 *  - the plain CHERI configuration instantiates the full CheriCapLib
 *    (fromMem/setAddr/isAccessInBounds/getBase/getLength/getTop/setBounds)
 *    in every lane, plus dynamic PCC handling per warp;
 *  - the optimised configuration keeps only the fast path
 *    (fromMem/setAddr/isAccessInBounds/toMem) per lane and moves the
 *    bounds instructions into the shared function unit, with the static
 *    PC metadata restriction removing the per-warp PCC logic.
 *
 * Block-RAM storage is derived from the same storage model the
 * register-file simulator uses (Table 2), plus instruction memory,
 * scratchpad (33-bit with tags), tag cache and pipeline buffers.
 */

#ifndef CHERI_SIMT_AREA_AREA_MODEL_HPP_
#define CHERI_SIMT_AREA_AREA_MODEL_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "simt/config.hpp"

namespace area
{

/** Per-function logic cost of the capability library (Figure 7). */
struct CapLibCosts
{
    unsigned fromMem = 46;
    unsigned toMem = 0;
    unsigned setAddr = 106;
    unsigned isAccessInBounds = 25;
    unsigned getBase = 50;
    unsigned getLength = 20;
    unsigned getTop = 78;
    unsigned setBounds = 287;

    /** Reference point: a 32-bit multiplier (Figure 7 caption). */
    unsigned multiplier32 = 567;

    /** Full library instantiated per lane (plain CHERI). */
    unsigned
    fullPath() const
    {
        return fromMem + toMem + setAddr + isAccessInBounds + getBase +
               getLength + getTop + setBounds;
    }

    /** Fast path kept per lane in the optimised configuration. */
    unsigned
    fastPath() const
    {
        return fromMem + toMem + setAddr + isAccessInBounds;
    }

    /** Bounds functions moved into the shared function unit. */
    unsigned
    slowPath() const
    {
        return getBase + getLength + getTop + setBounds;
    }
};

/** One line of the area breakdown. */
struct AreaItem
{
    std::string component;
    uint64_t alms = 0;
};

/** Synthesis estimate for one SM configuration. */
struct AreaEstimate
{
    uint64_t alms = 0;
    double bramKbits = 0.0;
    double fmaxMhz = 0.0;
    std::vector<AreaItem> breakdown;
};

class AreaModel
{
  public:
    AreaModel() = default;

    const CapLibCosts &capLib() const { return capLib_; }

    /** Estimate logic area and storage for an SM configuration. */
    AreaEstimate estimate(const simt::SmConfig &cfg) const;

  private:
    CapLibCosts capLib_;

    // Baseline SM components (ALMs), calibrated against Table 3.
    static constexpr unsigned kLaneExecUnit = 2600; ///< ALU+FPU+LSU port
    static constexpr unsigned kScratchpadNetwork = 12000;
    static constexpr unsigned kCoalescingUnit = 9500;
    static constexpr unsigned kSchedulerPipeline = 11000;
    static constexpr unsigned kRegFileControl = 7053;
    static constexpr unsigned kSharedFunctionUnit = 4000;

    // CHERI additions.
    static constexpr unsigned kCapLaneMiscFull = 480; ///< mux/null/trap
    static constexpr unsigned kCapLaneMiscOpt = 421;  ///< + meta compress
    static constexpr unsigned kPccPerWarpDynamic = 40;
    static constexpr unsigned kTagController = 1600;
    static constexpr unsigned kFlitSerialiser = 939;
    static constexpr unsigned kSfuCapExtension = 928; ///< fns + widening
};

} // namespace area

#endif // CHERI_SIMT_AREA_AREA_MODEL_HPP_
