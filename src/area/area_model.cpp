#include "area/area_model.hpp"

#include "simt/regfile.hpp"
#include "support/stats.hpp"

namespace area
{

AreaEstimate
AreaModel::estimate(const simt::SmConfig &cfg) const
{
    AreaEstimate est;
    const uint64_t lanes = cfg.numLanes;
    const uint64_t warps = cfg.numWarps;

    const auto add = [&](const std::string &name, uint64_t alms) {
        if (alms == 0)
            return;
        est.breakdown.push_back(AreaItem{name, alms});
        est.alms += alms;
    };

    // ---- Baseline SM logic ----
    add("vector lanes (ALU/FPU/LSU)", lanes * kLaneExecUnit);
    add("scratchpad banking network", kScratchpadNetwork);
    add("coalescing unit", kCoalescingUnit);
    add("scheduler + pipeline control", kSchedulerPipeline);
    add("register-file compression control", kRegFileControl);
    add("shared function unit (fdiv/fsqrt)", kSharedFunctionUnit);

    // ---- CHERI logic ----
    if (cfg.purecap) {
        if (cfg.sfuCheriOffload) {
            add("CHERI fast path per lane",
                lanes * (capLib_.fastPath() + kCapLaneMiscOpt));
            add("CHERI bounds unit in SFU", kSfuCapExtension);
        } else {
            add("CHERI full CheriCapLib per lane",
                lanes * (capLib_.fullPath() + kCapLaneMiscFull));
        }
        if (!cfg.staticPcMeta)
            add("dynamic PCC handling per warp",
                warps * kPccPerWarpDynamic);
        add("tag controller", kTagController);
        add("two-flit capability serialiser", kFlitSerialiser);
    }

    // ---- On-chip storage ----
    // Register-file bits come from the same model the simulator uses.
    support::StatSet scratch_stats;
    simt::RegFileSystem rf(cfg, scratch_stats);
    double bits = static_cast<double>(rf.dataStorageBits()) +
                  static_cast<double>(rf.metaStorageBits());

    bits += simt::kTcimSize * 8.0; // instruction memory
    // Scratchpad: 33-bit banks when tagged, 32-bit otherwise.
    bits += (simt::kSharedSize / 4.0) * (cfg.taggedMem ? 33 : 32);
    // Pipeline buffers, coalescer staging, response reorder FIFOs.
    bits += 189.0 * 1024;
    if (cfg.purecap) {
        // Tag cache data array.
        bits += cfg.tagCacheLines * cfg.tagCacheLineBytes * 8.0;
        // Suspended-warp state widened for capability results.
        bits += 32.0 * 1024;
        if (!cfg.staticPcMeta) {
            // Per-thread PCC metadata (33 bits each).
            bits += 33.0 * cfg.numThreads();
        } else {
            // One PCC per SM.
            bits += 33.0;
        }
    }
    est.bramKbits = bits / 1024.0;

    // Fmax barely moves across the three configurations (Table 3); the
    // dominant critical path is the scratchpad network in all of them.
    est.fmaxMhz = 180.0;
    if (cfg.purecap && !cfg.metaCompressed)
        est.fmaxMhz = 181.0; // uncompressed metadata shortens the RF path

    return est;
}

} // namespace area
