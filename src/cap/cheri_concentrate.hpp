/**
 * @file
 * CHERI Concentrate compressed-bounds arithmetic for 64+1-bit capabilities
 * on a 32-bit address space, mirroring the CheriCapLib functions used by the
 * CHERI-SIMT paper (Figure 7):
 *
 *   fromMem / toMem        -- CapMem (65-bit) <-> CapPipe (decompressed)
 *   setAddr                -- pointer arithmetic with representability check
 *   isAccessInBounds       -- cheap bounds check against partial decode
 *   getBase / getLength / getTop
 *   setBounds              -- narrow bounds, rounding if unrepresentable
 *   representable rounding -- CRRL / CRAM helpers
 *
 * Format (64 bits of architectural state + 1 tag bit):
 *
 *   [63:32] metadata, [31:0] address
 *
 *   metadata: [31:24] perms(8) [23] flag [22:19] otype(4) [18:15] reserved
 *             [14:0]  bounds = IE(1) @ T(6) @ B(8)
 *
 * The bounds field is the 15-bit CHERI Concentrate encoding with mantissa
 * width MW = 8: an 8-bit B field, a 6-bit T field (the top two bits of T
 * are reconstructed), and an internal-exponent bit IE. With IE set, the low
 * three bits of both T and B hold a 6-bit exponent E (clamped to E_MAX)
 * and the corresponding mantissa bits are implied zero.
 */

#ifndef CHERI_SIMT_CAP_CHERI_CONCENTRATE_HPP_
#define CHERI_SIMT_CAP_CHERI_CONCENTRATE_HPP_

#include <cstdint>

namespace cap
{

/** Mantissa width of the 64-bit CHERI Concentrate format. */
constexpr unsigned kMantissaWidth = 8;

/** Maximum exponent: bounds may span the whole 2^32-byte address space. */
constexpr unsigned kMaxExponent = 26; // 32 - MW + 2

/** Permission bits (a representative subset of CHERI-RISC-V v9). */
enum Perm : uint8_t
{
    PERM_GLOBAL = 1 << 0,
    PERM_EXECUTE = 1 << 1,
    PERM_LOAD = 1 << 2,
    PERM_STORE = 1 << 3,
    PERM_LOAD_CAP = 1 << 4,
    PERM_STORE_CAP = 1 << 5,
    PERM_STORE_LOCAL = 1 << 6,
    PERM_ACCESS_SYS = 1 << 7,
};

constexpr uint8_t kPermsAll = 0xff;

/** Object types. Anything other than UNSEALED makes the cap sealed. */
enum OType : uint8_t
{
    OTYPE_UNSEALED = 0,
    OTYPE_SENTRY = 1,
};

/**
 * In-memory capability representation: 64 architectural bits plus the tag.
 * Matches the paper's "CapMem = Bit 65".
 */
struct CapMem
{
    uint64_t bits = 0; ///< [63:32] metadata, [31:0] address
    bool tag = false;  ///< validity tag

    bool operator==(const CapMem &) const = default;
};

/**
 * In-pipeline, partially decompressed capability (the paper's
 * "CapPipe = Bit 91"). Keeps the raw encoded fields plus the decoded
 * exponent/mantissas so bounds checks are cheap; base and top are computed
 * on demand.
 */
struct CapPipe
{
    bool tag = false;
    uint8_t perms = 0;
    bool flag = false;
    uint8_t otype = OTYPE_UNSEALED;
    uint8_t reserved = 0;
    uint32_t addr = 0;

    // Decoded bounds state.
    uint8_t exponent = 0; ///< E, clamped to kMaxExponent
    bool internalExp = false;
    uint16_t b = 0; ///< full 8-bit B mantissa (implied zeros included)
    uint16_t t = 0; ///< full 8-bit T mantissa with reconstructed top bits

    bool isSealed() const { return otype != OTYPE_UNSEALED; }
    bool isSentry() const { return otype == OTYPE_SENTRY; }

    bool operator==(const CapPipe &) const = default;
};

/** Decoded bounds of a capability. top is a 33-bit quantity. */
struct Bounds
{
    uint32_t base = 0;
    uint64_t top = 0; // <= 2^32

    bool operator==(const Bounds &) const = default;
};

/** Result of setBounds: the derived capability and whether it was exact. */
struct SetBoundsResult
{
    CapPipe cap;
    bool exact = false;
};

/** The null capability: tag clear, all metadata bits zero. */
CapMem nullCapMem();
CapPipe nullCapPipe();

/**
 * The almighty root capability: tagged, all permissions, bounds covering
 * the entire [0, 2^32) address space, address zero.
 */
CapPipe rootCap();

/** Decode an in-memory capability to pipeline form (paper: fromMem). */
CapPipe fromMem(const CapMem &mem);

/** Encode a pipeline capability to memory form (paper: toMem). */
CapMem toMem(const CapPipe &cap);

/** Decode full bounds of a capability (paper: getBase/getTop). */
Bounds getBounds(const CapPipe &cap);

/** Lower bound (paper: getBase). */
uint32_t getBase(const CapPipe &cap);

/** 33-bit upper bound (paper: getTop). */
uint64_t getTop(const CapPipe &cap);

/** 33-bit length = top - base, clamped at zero (paper: getLength). */
uint64_t getLength(const CapPipe &cap);

/**
 * Fast representability check: can the address be changed to
 * cap.addr + increment without changing the decoded bounds?
 * This is the hardware fast-path check from the CHERI Concentrate paper
 * (and the SAIL fastRepCheck); it is conservative: a false result may
 * sometimes be representable, a true result is always safe.
 */
bool inRepresentableRange(const CapPipe &cap, uint32_t increment);

/**
 * Set the address of a capability (paper: setAddr). If the new address
 * falls outside the representable region, or the capability is sealed,
 * the tag of the result is cleared.
 */
CapPipe setAddr(const CapPipe &cap, uint32_t new_addr);

/** setAddr(cap, cap.addr + increment); used by CIncOffset. */
CapPipe incAddr(const CapPipe &cap, uint32_t increment);

/**
 * Check that an access of 2^logWidth bytes at the capability's current
 * address lies within bounds (paper: isAccessInBounds).
 */
bool isAccessInBounds(const CapPipe &cap, unsigned log_width);

/** Bounds check of an arbitrary [addr, addr+size) range. */
bool isRangeInBounds(const CapPipe &cap, uint32_t addr, uint32_t size);

/**
 * Narrow the bounds of @p cap to [cap.addr, cap.addr + length)
 * (paper: setBounds). The result's bounds may be rounded outwards to the
 * nearest representable bounds; `exact` reports whether rounding occurred.
 * The resulting bounds never exceed the original capability's bounds:
 * if they would, the result tag is cleared (monotonicity).
 */
SetBoundsResult setBounds(const CapPipe &cap, uint64_t length);

/**
 * CRRL: round a requested length up to the nearest representable length
 * (assuming a suitably aligned base).
 */
uint32_t representableLength(uint32_t length);

/**
 * CRAM: alignment mask a base must satisfy for a region of the given
 * length to have exactly representable bounds.
 */
uint32_t representableAlignmentMask(uint32_t length);

/** Clear the tag (CClearTag). */
CapPipe clearTag(const CapPipe &cap);

/** Bitwise-and permissions (CAndPerm); clears tag on sealed caps. */
CapPipe andPerms(const CapPipe &cap, uint8_t perm_mask);

/** Seal as a sentry (CSealEntry). */
CapPipe sealEntry(const CapPipe &cap);

} // namespace cap

#endif // CHERI_SIMT_CAP_CHERI_CONCENTRATE_HPP_
