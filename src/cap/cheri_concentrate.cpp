#include "cap/cheri_concentrate.hpp"

#include "support/bits.hpp"
#include "support/logging.hpp"

namespace cap
{

namespace
{

using support::bit;
using support::bits;
using support::mask;

constexpr unsigned MW = kMantissaWidth;

/** Shift that is well-defined for shift amounts >= 64. */
constexpr uint64_t
shr64(uint64_t v, unsigned n)
{
    return n >= 64 ? 0 : (v >> n);
}

constexpr uint64_t
shl64(uint64_t v, unsigned n)
{
    return n >= 64 ? 0 : (v << n);
}

/** Reconstruct the top two bits of T from B and the exponent encoding. */
uint16_t
reconstructT(uint16_t t_low6, uint16_t b_full, bool internal_exp)
{
    // L_carry: does the truncated T sit below the truncated B?
    const unsigned l_carry = (t_low6 < (b_full & mask(MW - 2))) ? 1 : 0;
    const unsigned l_msb = internal_exp ? 1 : 0;
    const unsigned t_hi =
        (static_cast<unsigned>(b_full >> (MW - 2)) + l_carry + l_msb) & 0x3;
    return static_cast<uint16_t>((t_hi << (MW - 2)) | t_low6);
}

} // namespace

CapMem
nullCapMem()
{
    return CapMem{};
}

CapPipe
nullCapPipe()
{
    return fromMem(nullCapMem());
}

CapPipe
rootCap()
{
    CapPipe c;
    c.tag = true;
    c.perms = kPermsAll;
    c.flag = false;
    c.otype = OTYPE_UNSEALED;
    c.addr = 0;
    c.internalExp = true;
    c.exponent = kMaxExponent;
    c.b = 0;
    c.t = uint16_t{1} << (MW - 2); // top = 2^32 once scaled by 2^E
    return c;
}

CapPipe
fromMem(const CapMem &mem)
{
    CapPipe c;
    c.tag = mem.tag;
    c.addr = static_cast<uint32_t>(mem.bits & 0xffffffffu);

    const uint32_t meta = static_cast<uint32_t>(mem.bits >> 32);
    c.perms = static_cast<uint8_t>(bits(meta, 31, 24));
    c.flag = bit(meta, 23);
    c.otype = static_cast<uint8_t>(bits(meta, 22, 19));
    c.reserved = static_cast<uint8_t>(bits(meta, 18, 15));

    const bool ie = bit(meta, 14);
    const uint16_t t_field = static_cast<uint16_t>(bits(meta, 13, 8));
    const uint16_t b_field = static_cast<uint16_t>(bits(meta, 7, 0));

    c.internalExp = ie;
    uint16_t t_low6;
    if (ie) {
        const unsigned e = (static_cast<unsigned>(t_field & 0x7) << 3) |
                           static_cast<unsigned>(b_field & 0x7);
        // The raw exponent is preserved here; bounds decoding clamps it to
        // kMaxExponent, so malformed encodings still decode deterministically
        // while fromMem/toMem round-trips remain lossless.
        c.exponent = static_cast<uint8_t>(e);
        c.b = static_cast<uint16_t>(b_field & ~uint16_t{0x7});
        t_low6 = static_cast<uint16_t>(t_field & ~uint16_t{0x7});
    } else {
        c.exponent = 0;
        c.b = b_field;
        t_low6 = t_field;
    }
    c.t = reconstructT(t_low6, c.b, ie);
    return c;
}

CapMem
toMem(const CapPipe &c)
{
    uint32_t meta = 0;
    meta = static_cast<uint32_t>(
        support::insertBits(meta, 31, 24, c.perms));
    meta = static_cast<uint32_t>(
        support::insertBits(meta, 23, 23, c.flag ? 1 : 0));
    meta = static_cast<uint32_t>(support::insertBits(meta, 22, 19, c.otype));
    meta =
        static_cast<uint32_t>(support::insertBits(meta, 18, 15, c.reserved));

    uint16_t t_field;
    uint16_t b_field;
    if (c.internalExp) {
        const unsigned e = c.exponent;
        t_field = static_cast<uint16_t>((c.t & 0x38) | ((e >> 3) & 0x7));
        b_field = static_cast<uint16_t>((c.b & 0xf8) | (e & 0x7));
    } else {
        t_field = static_cast<uint16_t>(c.t & mask(MW - 2));
        b_field = static_cast<uint16_t>(c.b & mask(MW));
    }
    meta = static_cast<uint32_t>(
        support::insertBits(meta, 14, 14, c.internalExp ? 1 : 0));
    meta = static_cast<uint32_t>(support::insertBits(meta, 13, 8, t_field));
    meta = static_cast<uint32_t>(support::insertBits(meta, 7, 0, b_field));

    CapMem mem;
    mem.tag = c.tag;
    mem.bits = (static_cast<uint64_t>(meta) << 32) | c.addr;
    return mem;
}

Bounds
getBounds(const CapPipe &c)
{
    const unsigned e =
        c.exponent > kMaxExponent ? kMaxExponent : c.exponent;

    const unsigned a3 =
        static_cast<unsigned>(shr64(c.addr, e + MW - 3)) & 0x7;
    const unsigned b3 = (c.b >> (MW - 3)) & 0x7;
    const unsigned t3 = (c.t >> (MW - 3)) & 0x7;
    const unsigned r3 = (b3 - 1) & 0x7;

    const int a_hi = a3 < r3 ? 1 : 0;
    const int b_hi = b3 < r3 ? 1 : 0;
    const int t_hi = t3 < r3 ? 1 : 0;
    const int corr_base = b_hi - a_hi;
    const int corr_top = t_hi - a_hi;

    const uint32_t a_top = static_cast<uint32_t>(shr64(c.addr, e + MW));

    const uint64_t base_full =
        shl64(static_cast<uint32_t>(a_top + corr_base), e + MW) |
        shl64(c.b, e);
    const uint64_t top_full =
        shl64(static_cast<uint32_t>(a_top + corr_top), e + MW) |
        shl64(c.t, e);

    const uint32_t base = static_cast<uint32_t>(base_full & mask(32));
    uint64_t top = top_full & mask(33);

    // Final correction from the CHERI Concentrate decoding: if top ends up
    // more than an address space away from base, flip its MSB.
    if (e < kMaxExponent - 1) {
        const unsigned top2 = static_cast<unsigned>(top >> 31) & 0x3;
        const unsigned base1 = (base >> 31) & 0x1;
        if (top2 - base1 > 1)
            top ^= (uint64_t{1} << 32);
    }
    return Bounds{base, top};
}

uint32_t
getBase(const CapPipe &c)
{
    return getBounds(c).base;
}

uint64_t
getTop(const CapPipe &c)
{
    return getBounds(c).top;
}

uint64_t
getLength(const CapPipe &c)
{
    const Bounds b = getBounds(c);
    return b.top >= b.base ? b.top - b.base : 0;
}

bool
inRepresentableRange(const CapPipe &c, uint32_t increment)
{
    const unsigned e =
        c.exponent > kMaxExponent ? kMaxExponent : c.exponent;
    if (e >= kMaxExponent - 2)
        return true; // representable region covers the address space

    const int32_t inc = static_cast<int32_t>(increment);
    const int64_t i_top = static_cast<int64_t>(inc) >> (e + MW);
    const uint32_t i_mid =
        static_cast<uint32_t>(shr64(increment, e)) & mask(MW);
    const uint32_t a_mid =
        static_cast<uint32_t>(shr64(c.addr, e)) & mask(MW);

    const unsigned b3 = (c.b >> (MW - 3)) & 0x7;
    const unsigned r3 = (b3 - 1) & 0x7;
    const uint32_t r = static_cast<uint32_t>(r3) << (MW - 3);

    const uint32_t diff = (r - a_mid) & mask(MW);
    const uint32_t diff1 = (diff - 1) & mask(MW);

    if (i_top == 0)
        return i_mid < diff1;
    if (i_top == -1)
        return i_mid >= diff && r != a_mid;
    return false;
}

CapPipe
setAddr(const CapPipe &c, uint32_t new_addr)
{
    CapPipe r = c;
    const uint32_t increment = new_addr - c.addr;
    if (c.isSealed() || !inRepresentableRange(c, increment))
        r.tag = false;
    r.addr = new_addr;
    return r;
}

CapPipe
incAddr(const CapPipe &c, uint32_t increment)
{
    return setAddr(c, c.addr + increment);
}

bool
isAccessInBounds(const CapPipe &c, unsigned log_width)
{
    return isRangeInBounds(c, c.addr, 1u << log_width);
}

bool
isRangeInBounds(const CapPipe &c, uint32_t addr, uint32_t size)
{
    const Bounds b = getBounds(c);
    const uint64_t access_top = static_cast<uint64_t>(addr) + size;
    return addr >= b.base && access_top <= b.top;
}

SetBoundsResult
setBounds(const CapPipe &c, uint64_t length)
{
    panic_if(length > (uint64_t{1} << 32), "setBounds length out of range");

    const uint32_t base = c.addr;
    const uint64_t top = static_cast<uint64_t>(base) + length; // <= 2^33

    // Requested bounds must lie within the source capability's bounds.
    const Bounds old_bounds = getBounds(c);
    const bool monotonic =
        base >= old_bounds.base && top <= old_bounds.top;

    // Choose the exponent so the MSB of length lands second from the top of
    // the mantissa. length[32:MW-1] is a (33 - MW + 1) = 26-bit field.
    const uint64_t len_hi = shr64(length, MW - 1) & mask(kMaxExponent);
    const unsigned e =
        kMaxExponent - support::countLeadingZeros(len_hi, kMaxExponent);
    const bool ie = (e != 0) || bit(length, MW - 2);

    uint16_t b_bits;
    uint16_t t_bits;
    bool lost_base = false;
    bool lost_top = false;
    bool inc_e = false;

    if (!ie) {
        b_bits = static_cast<uint16_t>(base & mask(MW));
        t_bits = static_cast<uint16_t>(top & mask(MW));
    } else {
        uint32_t b_ie =
            static_cast<uint32_t>(shr64(base, e + 3)) & mask(MW - 3);
        uint32_t t_ie =
            static_cast<uint32_t>(shr64(top, e + 3)) & mask(MW - 3);

        lost_base = (base & mask(e + 3)) != 0;
        lost_top = (top & mask(e + 3)) != 0;
        if (lost_top)
            t_ie = (t_ie + 1) & mask(MW - 3);

        const uint32_t len_ie = (t_ie - b_ie) & mask(MW - 3);
        if (bit(len_ie, MW - 4)) {
            // Length overflowed the mantissa: increment the exponent and
            // recompute, accounting for freshly lost bits.
            inc_e = true;
            lost_base = lost_base || bit(b_ie, 0);
            lost_top = lost_top || bit(t_ie, 0);
            b_ie = static_cast<uint32_t>(shr64(base, e + 4)) & mask(MW - 3);
            t_ie = (static_cast<uint32_t>(shr64(top, e + 4)) +
                    (lost_top ? 1 : 0)) &
                   mask(MW - 3);
        }
        b_bits = static_cast<uint16_t>(b_ie << 3);
        t_bits = static_cast<uint16_t>(t_ie << 3);
    }

    SetBoundsResult res;
    res.cap = c;
    res.cap.addr = base;
    res.cap.internalExp = ie;
    const unsigned new_e = inc_e ? e + 1 : e;
    res.cap.exponent =
        static_cast<uint8_t>(new_e > kMaxExponent ? kMaxExponent : new_e);
    res.cap.b = b_bits;
    res.cap.t = t_bits;
    res.cap.tag = c.tag && !c.isSealed() && monotonic;
    res.exact = !(lost_base || lost_top);
    return res;
}

uint32_t
representableLength(uint32_t length)
{
    const uint32_t m = representableAlignmentMask(length);
    return (length + ~m) & m;
}

uint32_t
representableAlignmentMask(uint32_t length)
{
    CapPipe root = rootCap();
    const SetBoundsResult r = setBounds(root, length);
    if (!r.cap.internalExp)
        return ~uint32_t{0};
    const unsigned e = r.cap.exponent;
    return static_cast<uint32_t>(~mask(e + 3));
}

CapPipe
clearTag(const CapPipe &c)
{
    CapPipe r = c;
    r.tag = false;
    return r;
}

CapPipe
andPerms(const CapPipe &c, uint8_t perm_mask)
{
    CapPipe r = c;
    r.perms = static_cast<uint8_t>(r.perms & perm_mask);
    if (c.isSealed())
        r.tag = false;
    return r;
}

CapPipe
sealEntry(const CapPipe &c)
{
    CapPipe r = c;
    if (c.isSealed())
        r.tag = false;
    r.otype = OTYPE_SENTRY;
    return r;
}

} // namespace cap
