/**
 * @file
 * Crash-resilient append-only JSONL journal (campaign resume; see
 * DESIGN.md section 13).
 *
 * JournalWriter appends one JSON document per line to a file opened in
 * O_APPEND mode and fsyncs in batches, so a SIGKILLed writer loses at
 * most the unsynced tail -- and at worst leaves one *partial* trailing
 * line, never a corrupt middle line. readJsonLines() implements the
 * matching recovery contract: a truncated or malformed final line is
 * skipped with a warning (the crash case), while a malformed line in the
 * middle of the file is a hard error (real corruption, not a crash
 * artefact).
 */

#ifndef CHERI_SIMT_SUPPORT_JOURNAL_HPP_
#define CHERI_SIMT_SUPPORT_JOURNAL_HPP_

#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace support
{

class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter() { close(); }

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Open @p path for appending (created if missing). Returns false and
     * sets @p err on failure. Reopening an already-open writer closes
     * the previous file first.
     */
    bool open(const std::string &path, std::string *err = nullptr);

    bool isOpen() const { return fd_ >= 0; }

    /**
     * Append @p line (a complete JSON document, no trailing newline) as
     * one journal line. Thread-safe. fsyncs every fsyncBatch() lines.
     */
    bool append(const std::string &line);

    /** Serialize and append a JSON value as one line. */
    bool append(const json::Value &v) { return append(v.dump(0)); }

    /** Lines between fsyncs (1 = sync every line; default 32). */
    void setFsyncBatch(unsigned n) { fsyncBatch_ = n ? n : 1; }

    /** Force an fsync of everything appended so far. */
    void sync();

    /** fsync and close the file (idempotent). */
    void close();

    uint64_t linesWritten() const { return lines_; }

  private:
    int fd_ = -1;
    unsigned fsyncBatch_ = 32;
    uint64_t lines_ = 0;
    uint64_t unsynced_ = 0;
    std::mutex mutex_;
};

/**
 * Read a JSONL journal written by JournalWriter. Parses each line into
 * @p out. A missing file is an empty journal (returns true). A partial
 * or malformed *final* line -- the signature a crashed writer leaves --
 * is skipped and described in @p warning. A malformed line anywhere else
 * is real corruption: returns false with @p err set and @p out holding
 * the lines parsed so far.
 */
bool readJsonLines(const std::string &path, std::vector<json::Value> &out,
                   std::string *warning = nullptr,
                   std::string *err = nullptr);

} // namespace support

#endif // CHERI_SIMT_SUPPORT_JOURNAL_HPP_
