#include "support/logging.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace support
{

namespace
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n <= 0)
        return {};
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

int g_log_level = -1; // -1: consult the environment on first use

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      default: return "debug";
    }
}

} // namespace

LogLevel
logLevel()
{
    if (g_log_level < 0) {
        const char *env = std::getenv("CHERI_SIMT_VERBOSE");
        if (env == nullptr || env[0] == '\0' ||
            (env[0] == '0' && env[1] == '\0'))
            g_log_level = static_cast<int>(LogLevel::Warn);
        else if (env[0] >= '2' && env[0] <= '9')
            g_log_level = static_cast<int>(LogLevel::Debug);
        else
            g_log_level = static_cast<int>(LogLevel::Info);
    }
    return static_cast<LogLevel>(g_log_level);
}

void
setLogLevel(LogLevel level)
{
    g_log_level = static_cast<int>(level);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

void
log(LogLevel level, const char *fmt, ...)
{
    if (!logEnabled(level))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "%s: %s\n", levelName(level), msg.c_str());
}

bool
verbose()
{
    return logEnabled(LogLevel::Info);
}

void
setVerbose(bool on)
{
    setLogLevel(on ? LogLevel::Info : LogLevel::Warn);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace support
