#include "support/logging.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace support
{

namespace
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n <= 0)
        return {};
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

int g_verbose = -1; // -1: consult the environment on first use

} // namespace

bool
verbose()
{
    if (g_verbose < 0) {
        const char *env = std::getenv("CHERI_SIMT_VERBOSE");
        g_verbose = (env != nullptr && env[0] != '\0' &&
                     !(env[0] == '0' && env[1] == '\0'))
                        ? 1
                        : 0;
    }
    return g_verbose != 0;
}

void
setVerbose(bool on)
{
    g_verbose = on ? 1 : 0;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace support
