#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/logging.hpp"

namespace support
{
namespace json
{

uint64_t
Value::asUint() const
{
    if (kind_ == Kind::Int)
        return int_;
    panic_if(kind_ != Kind::Double, "asUint on a non-number JSON value");
    return static_cast<uint64_t>(double_);
}

double
Value::asDouble() const
{
    if (kind_ == Kind::Double)
        return double_;
    panic_if(kind_ != Kind::Int, "asDouble on a non-number JSON value");
    return static_cast<double>(int_);
}

size_t
Value::size() const
{
    return kind_ == Kind::Object ? members_.size() : elems_.size();
}

void
Value::push(Value v)
{
    panic_if(kind_ != Kind::Array, "push on a non-array JSON value");
    elems_.push_back(std::move(v));
}

void
Value::set(const std::string &key, Value v)
{
    panic_if(kind_ != Kind::Object, "set on a non-object JSON value");
    for (auto &[k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

bool
Value::has(const std::string &key) const
{
    for (const auto &[k, v] : members_) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

const Value &
Value::get(const std::string &key) const
{
    for (const auto &[k, v] : members_) {
        if (k == key)
            return v;
    }
    static const Value kNull;
    return kNull;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
Value::dumpTo(std::string &out, unsigned indent, unsigned depth) const
{
    const std::string pad(indent * (depth + 1), ' ');
    const std::string close_pad(indent * depth, ' ');
    const char *nl = indent ? "\n" : "";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(int_));
        out += buf;
        break;
      }
      case Kind::Double: {
        if (!std::isfinite(double_)) {
            // JSON has no NaN/Inf; emit null (the reader treats it as
            // missing data rather than silently corrupting a number).
            out += "null";
            break;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
        break;
      }
      case Kind::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
      case Kind::Array: {
        if (elems_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (size_t i = 0; i < elems_.size(); ++i) {
            out += pad;
            elems_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < elems_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += ']';
        break;
      }
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (size_t i = 0; i < members_.size(); ++i) {
            out += pad;
            out += '"';
            out += escape(members_[i].first);
            out += indent ? "\": " : "\":";
            members_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += '}';
        break;
      }
    }
}

std::string
Value::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser over a character range. */
class Parser
{
  public:
    Parser(const char *p, const char *end) : p_(p), end_(end) {}

    bool
    parse(Value &out, std::string &err)
    {
        if (!value(out, err))
            return false;
        skipWs();
        if (p_ != end_) {
            err = "trailing characters after JSON value";
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *word)
    {
        const char *q = p_;
        for (; *word; ++word, ++q) {
            if (q == end_ || *q != *word)
                return false;
        }
        p_ = q;
        return true;
    }

    bool
    value(Value &out, std::string &err)
    {
        skipWs();
        if (p_ == end_) {
            err = "unexpected end of input";
            return false;
        }
        // Depth cap: truncated or adversarial input (e.g. a crashed
        // journal writer cut off inside a deeply nested value, or a
        // "[[[[..." bomb) must produce a structured parse error, not a
        // stack overflow in the recursive descent.
        if (depth_ >= kMaxDepth && (*p_ == '{' || *p_ == '[')) {
            err = "JSON nesting deeper than 256 levels";
            return false;
        }
        switch (*p_) {
          case '{': return object(out, err);
          case '[': return array(out, err);
          case '"': return string(out, err);
          case 't':
            if (literal("true")) {
                out = Value::boolean(true);
                return true;
            }
            break;
          case 'f':
            if (literal("false")) {
                out = Value::boolean(false);
                return true;
            }
            break;
          case 'n':
            if (literal("null")) {
                out = Value::null();
                return true;
            }
            break;
          default:
            return number(out, err);
        }
        err = "malformed JSON literal";
        return false;
    }

    bool
    number(Value &out, std::string &err)
    {
        const char *start = p_;
        bool floating = false;
        if (p_ != end_ && *p_ == '-')
            ++p_;
        while (p_ != end_ &&
               (std::isdigit(static_cast<unsigned char>(*p_)) ||
                *p_ == '.' || *p_ == 'e' || *p_ == 'E' || *p_ == '+' ||
                *p_ == '-')) {
            floating = floating || *p_ == '.' || *p_ == 'e' || *p_ == 'E';
            ++p_;
        }
        if (p_ == start) {
            err = "malformed JSON number";
            return false;
        }
        const std::string text(start, p_);
        if (floating || text[0] == '-') {
            char *tail = nullptr;
            const double d = std::strtod(text.c_str(), &tail);
            if (*tail != '\0') {
                err = "malformed JSON number: " + text;
                return false;
            }
            out = Value::number(d);
        } else {
            char *tail = nullptr;
            const unsigned long long u =
                std::strtoull(text.c_str(), &tail, 10);
            if (*tail != '\0') {
                err = "malformed JSON number: " + text;
                return false;
            }
            out = Value::integer(u);
        }
        return true;
    }

    bool
    string(Value &out, std::string &err)
    {
        std::string s;
        if (!rawString(s, err))
            return false;
        out = Value::str(std::move(s));
        return true;
    }

    /** Parse the 4 hex digits of a \uXXXX escape (p_ on the 'u' or the
     *  last consumed character; ends on the last digit). */
    bool
    hex4(unsigned &code, std::string &err)
    {
        code = 0;
        for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ == end_ ||
                !std::isxdigit(static_cast<unsigned char>(*p_))) {
                err = "malformed \\u escape";
                return false;
            }
            const char c = *p_;
            code = code * 16 +
                   (std::isdigit(static_cast<unsigned char>(c))
                        ? static_cast<unsigned>(c - '0')
                        : static_cast<unsigned>(std::tolower(c) - 'a' +
                                                10));
        }
        return true;
    }

    /** Append code point @p cp (already validated) as UTF-8. */
    static void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xc0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xe0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            s += static_cast<char>(0xf0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    rawString(std::string &s, std::string &err)
    {
        ++p_; // opening quote
        while (p_ != end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ == end_)
                    break;
                switch (*p_) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'r': s += '\r'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'u': {
                    // \uXXXX is a UTF-16 code unit: BMP code points are
                    // encoded as UTF-8; a surrogate pair combines into
                    // one supplementary-plane code point; a lone
                    // surrogate is not a code point and is rejected.
                    unsigned code = 0;
                    if (!hex4(code, err))
                        return false;
                    if (code >= 0xdc00 && code <= 0xdfff) {
                        err = "lone low surrogate in \\u escape";
                        return false;
                    }
                    if (code >= 0xd800 && code <= 0xdbff) {
                        if (end_ - p_ < 3 || p_[1] != '\\' ||
                            p_[2] != 'u') {
                            err = "unpaired high surrogate in \\u escape";
                            return false;
                        }
                        p_ += 2; // the low surrogate's "\u"
                        unsigned low = 0;
                        if (!hex4(low, err))
                            return false;
                        if (low < 0xdc00 || low > 0xdfff) {
                            err = "unpaired high surrogate in \\u escape";
                            return false;
                        }
                        code = 0x10000 + ((code - 0xd800) << 10) +
                               (low - 0xdc00);
                    }
                    appendUtf8(s, code);
                    break;
                  }
                  default:
                    err = "unknown escape in JSON string";
                    return false;
                }
                ++p_;
            } else {
                s += *p_++;
            }
        }
        if (p_ == end_) {
            err = "unterminated JSON string";
            return false;
        }
        ++p_; // closing quote
        return true;
    }

    bool
    array(Value &out, std::string &err)
    {
        ++p_; // '['
        ++depth_;
        const DepthGuard guard(depth_);
        out = Value::array();
        skipWs();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        for (;;) {
            Value elem;
            if (!value(elem, err))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (p_ == end_) {
                err = "unterminated JSON array";
                return false;
            }
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == ']') {
                ++p_;
                return true;
            }
            err = "expected ',' or ']' in JSON array";
            return false;
        }
    }

    bool
    object(Value &out, std::string &err)
    {
        ++p_; // '{'
        ++depth_;
        const DepthGuard guard(depth_);
        out = Value::object();
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        for (;;) {
            skipWs();
            if (p_ == end_ || *p_ != '"') {
                err = "expected JSON object key";
                return false;
            }
            std::string key;
            if (!rawString(key, err))
                return false;
            skipWs();
            if (p_ == end_ || *p_ != ':') {
                err = "expected ':' after JSON object key";
                return false;
            }
            ++p_;
            Value member;
            if (!value(member, err))
                return false;
            out.set(key, std::move(member));
            skipWs();
            if (p_ == end_) {
                err = "unterminated JSON object";
                return false;
            }
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == '}') {
                ++p_;
                return true;
            }
            err = "expected ',' or '}' in JSON object";
            return false;
        }
    }

    static constexpr unsigned kMaxDepth = 256;

    struct DepthGuard
    {
        explicit DepthGuard(unsigned &d) : d_(d) {}
        ~DepthGuard() { --d_; }
        unsigned &d_;
    };

    const char *p_;
    const char *end_;
    unsigned depth_ = 0;
};

} // namespace

bool
Value::parse(const std::string &text, Value &out, std::string *err)
{
    std::string local_err;
    Parser parser(text.data(), text.data() + text.size());
    const bool ok = parser.parse(out, local_err);
    if (!ok && err)
        *err = local_err;
    return ok;
}

} // namespace json
} // namespace support
