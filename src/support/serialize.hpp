/**
 * @file
 * Little-endian binary serialization helpers for the checkpoint subsystem
 * (see simt/checkpoint.hpp and DESIGN.md section 13).
 *
 * ByteWriter appends fixed-width little-endian fields to a growable
 * buffer; ByteReader consumes them with a sticky failure flag, so a
 * truncated or corrupted image degrades into one structured error at the
 * end of a load instead of undefined behaviour in the middle. Every
 * value read after a failure is zero/empty, which keeps loaders free of
 * per-field error checks.
 */

#ifndef CHERI_SIMT_SUPPORT_SERIALIZE_HPP_
#define CHERI_SIMT_SUPPORT_SERIALIZE_HPP_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace support
{

class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        buf_.push_back(static_cast<uint8_t>(v));
        buf_.push_back(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        buf_.push_back(static_cast<uint8_t>(v));
        buf_.push_back(static_cast<uint8_t>(v >> 8));
        buf_.push_back(static_cast<uint8_t>(v >> 16));
        buf_.push_back(static_cast<uint8_t>(v >> 24));
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    void b(bool v) { u8(v ? 1 : 0); }

    /** Doubles travel as their IEEE-754 bit pattern (bit-exact). */
    void
    f64(double v)
    {
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** Length-prefixed (u32) byte string. */
    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes(reinterpret_cast<const uint8_t *>(s.data()), s.size());
    }

    void
    bytes(const uint8_t *p, size_t n)
    {
        buf_.insert(buf_.end(), p, p + n);
    }

    const std::vector<uint8_t> &data() const { return buf_; }
    size_t size() const { return buf_.size(); }
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

class ByteReader
{
  public:
    ByteReader(const uint8_t *p, size_t n) : p_(p), end_(p + n) {}

    explicit ByteReader(const std::vector<uint8_t> &v)
        : ByteReader(v.data(), v.size())
    {
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return *p_++;
    }

    uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        const uint16_t v = static_cast<uint16_t>(p_[0]) |
                           static_cast<uint16_t>(p_[1]) << 8;
        p_ += 2;
        return v;
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        const uint32_t v = static_cast<uint32_t>(p_[0]) |
                           static_cast<uint32_t>(p_[1]) << 8 |
                           static_cast<uint32_t>(p_[2]) << 16 |
                           static_cast<uint32_t>(p_[3]) << 24;
        p_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        const uint64_t lo = u32();
        return lo | static_cast<uint64_t>(u32()) << 32;
    }

    bool b() { return u8() != 0; }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const uint32_t n = u32();
        if (n > remaining()) {
            failWith("string length exceeds remaining input");
            return {};
        }
        std::string s(reinterpret_cast<const char *>(p_), n);
        p_ += n;
        return s;
    }

    bool
    bytes(uint8_t *out, size_t n)
    {
        if (!need(n))
            return false;
        std::memcpy(out, p_, n);
        p_ += n;
        return true;
    }

    /** Skip @p n bytes (section framing). */
    bool
    skip(size_t n)
    {
        if (!need(n))
            return false;
        p_ += n;
        return true;
    }

    size_t
    remaining() const
    {
        return failed_ ? 0 : static_cast<size_t>(end_ - p_);
    }

    const uint8_t *cursor() const { return p_; }

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }

    /** Mark the stream failed with a loader-supplied reason. */
    void
    failWith(const std::string &why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = why;
        }
        p_ = end_;
    }

  private:
    bool
    need(size_t n)
    {
        if (failed_)
            return false;
        if (static_cast<size_t>(end_ - p_) < n) {
            failWith("truncated input");
            return false;
        }
        return true;
    }

    const uint8_t *p_;
    const uint8_t *end_;
    bool failed_ = false;
    std::string error_;
};

/**
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of @p n bytes,
 * continuing from @p seed (pass the previous return value to chain).
 * crc32("123456789") == 0xCBF43926.
 */
uint32_t crc32(const uint8_t *p, size_t n, uint32_t seed = 0);

} // namespace support

#endif // CHERI_SIMT_SUPPORT_SERIALIZE_HPP_
