#include "support/serialize.hpp"

#include <array>

namespace support
{

namespace
{

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const uint8_t *p, size_t n, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace support
