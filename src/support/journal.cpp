#include "support/journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace support
{

bool
JournalWriter::open(const std::string &path, std::string *err)
{
    close();
    std::lock_guard<std::mutex> lock(mutex_);
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
    if (fd_ < 0) {
        if (err)
            *err = "cannot open journal " + path + ": " +
                   std::strerror(errno);
        return false;
    }
    lines_ = 0;
    unsynced_ = 0;
    return true;
}

bool
JournalWriter::append(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return false;
    std::string buf = line;
    buf += '\n';
    // A single O_APPEND write keeps the line atomic with respect to
    // other writers of the same journal.
    size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    ++lines_;
    if (++unsynced_ >= fsyncBatch_) {
        ::fsync(fd_);
        unsynced_ = 0;
    }
    return true;
}

void
JournalWriter::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0 && unsynced_ > 0) {
        ::fsync(fd_);
        unsynced_ = 0;
    }
}

void
JournalWriter::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        if (unsynced_ > 0)
            ::fsync(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

bool
readJsonLines(const std::string &path, std::vector<json::Value> &out,
              std::string *warning, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return true; // missing journal == empty journal

    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    size_t pos = 0;
    size_t line_no = 0;
    while (pos < text.size()) {
        const size_t nl = text.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::string line =
            text.substr(pos, complete ? nl - pos : std::string::npos);
        pos = complete ? nl + 1 : text.size();
        ++line_no;

        if (line.empty() ||
            line.find_first_not_of(" \t\r") == std::string::npos)
            continue;

        json::Value v;
        std::string parse_err;
        if (!json::Value::parse(line, v, &parse_err)) {
            const bool is_last = pos >= text.size();
            if (is_last) {
                // The signature of a crashed writer: the unsynced (or
                // mid-write) tail. Skip it; every preceding line was a
                // complete record.
                if (warning) {
                    char buf[64];
                    std::snprintf(buf, sizeof(buf), "%zu", line_no);
                    *warning = "journal " + path + ": skipping " +
                               (complete ? "malformed" : "partial") +
                               " trailing line " + buf + " (" + parse_err +
                               ")";
                }
                return true;
            }
            if (err) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%zu", line_no);
                *err = "journal " + path + ": malformed line " + buf +
                       " before end of file (" + parse_err + ")";
            }
            return false;
        }
        out.push_back(std::move(v));
    }
    return true;
}

} // namespace support
