/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small xoshiro128** implementation is used instead of <random> engines so
 * that generated workloads are bit-identical across standard libraries and
 * platforms; every benchmark and test seeds its own generator explicitly.
 */

#ifndef CHERI_SIMT_SUPPORT_RNG_HPP_
#define CHERI_SIMT_SUPPORT_RNG_HPP_

#include <cstdint>

namespace support
{

/** Deterministic xoshiro128** PRNG. */
class Rng
{
  public:
    explicit Rng(uint64_t seed)
    {
        // SplitMix64 seeding to fill the state.
        uint64_t x = seed + 0x9e3779b97f4a7c15ULL;
        for (auto &word : state_) {
            uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = static_cast<uint32_t>((z ^ (z >> 31)) & 0xffffffffULL);
        }
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
            state_[0] = 1;
    }

    /** Next 32-bit pseudo-random value. */
    uint32_t
    next()
    {
        const uint32_t result = rotl(state_[1] * 5, 7) * 9;
        const uint32_t t = state_[1] << 9;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 11);
        return result;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    uint32_t
    nextBounded(uint32_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int32_t
    nextRange(int32_t lo, int32_t hi)
    {
        const uint32_t span = static_cast<uint32_t>(hi - lo) + 1;
        return lo + static_cast<int32_t>(nextBounded(span));
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 8) * (1.0f / 16777216.0f);
    }

  private:
    static uint32_t
    rotl(uint32_t x, int k)
    {
        return (x << k) | (x >> (32 - k));
    }

    uint32_t state_[4] = {};
};

} // namespace support

#endif // CHERI_SIMT_SUPPORT_RNG_HPP_
