#include "support/stats.hpp"

#include <sstream>

namespace support
{

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << name << " = " << value << "\n";
    return os.str();
}

} // namespace support
