/**
 * @file
 * Logging and error-reporting helpers, following the gem5 panic/fatal
 * distinction:
 *
 *  - panic():  an internal invariant of this library was violated (a bug in
 *              the reproduction itself). Aborts.
 *  - fatal():  the user supplied an impossible configuration or workload.
 *              Exits with an error code.
 *  - warn():   something is suspicious but execution can continue.
 */

#ifndef CHERI_SIMT_SUPPORT_LOGGING_HPP_
#define CHERI_SIMT_SUPPORT_LOGGING_HPP_

#include <cstdarg>
#include <string>

namespace support
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Whether advisory diagnostics (verbose-only warn() sites) should print.
 * Defaults to quiet; set the CHERI_SIMT_VERBOSE environment variable to a
 * non-empty value other than "0", or call setVerbose(true), to enable.
 * Conditions that matter architecturally are surfaced as structured traps
 * regardless of this flag.
 */
bool verbose();
void setVerbose(bool on);

} // namespace support

#define panic(...) ::support::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::support::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::support::warnImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Internal-consistency check that is always compiled in. */
#define panic_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond)                                                             \
            panic(__VA_ARGS__);                                               \
    } while (0)

#define fatal_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond)                                                             \
            fatal(__VA_ARGS__);                                               \
    } while (0)

#endif // CHERI_SIMT_SUPPORT_LOGGING_HPP_
