/**
 * @file
 * Logging and error-reporting helpers, following the gem5 panic/fatal
 * distinction:
 *
 *  - panic():  an internal invariant of this library was violated (a bug in
 *              the reproduction itself). Aborts.
 *  - fatal():  the user supplied an impossible configuration or workload.
 *              Exits with an error code.
 *  - warn():   something is suspicious but execution can continue.
 *
 * Advisory diagnostics go through the leveled log() helper instead, so
 * every verbosity decision is made in one place and everything prints
 * to stderr -- --json output on stdout is never contaminated.
 */

#ifndef CHERI_SIMT_SUPPORT_LOGGING_HPP_
#define CHERI_SIMT_SUPPORT_LOGGING_HPP_

#include <cstdarg>
#include <string>

namespace support
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Diagnostic verbosity, consolidated from the scattered
 * CHERI_SIMT_VERBOSE checks. The environment variable selects the
 * level once, on first use:
 *
 *   unset / "" / "0"  -> Warn  (quiet: only unconditional warns print)
 *   "1" or other      -> Info  (advisory diagnostics print)
 *   "2" and above     -> Debug (chatty per-launch diagnostics print)
 *
 * All log output goes to stderr; conditions that matter architecturally
 * are surfaced as structured traps regardless of the level.
 */
enum class LogLevel
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Would a message at @p level print right now? */
bool logEnabled(LogLevel level);

/** Print "level: message" to stderr iff @p level <= logLevel(). */
void log(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** logEnabled(LogLevel::Info) -- kept for existing call sites. */
bool verbose();

/** setLogLevel(Info) / setLogLevel(Warn) -- kept for existing tests. */
void setVerbose(bool on);

} // namespace support

#define panic(...) ::support::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::support::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::support::warnImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Internal-consistency check that is always compiled in. */
#define panic_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond)                                                             \
            panic(__VA_ARGS__);                                               \
    } while (0)

#define fatal_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond)                                                             \
            fatal(__VA_ARGS__);                                               \
    } while (0)

#endif // CHERI_SIMT_SUPPORT_LOGGING_HPP_
