/**
 * @file
 * Deterministic trace/profile layer (DESIGN.md section 11).
 *
 * A structured event tracer for the simulator: producers (SMs, the
 * device runtime, the memory system, the fault injector) push rare,
 * category-masked events into per-producer ring buffers; the owning
 * Session merges the buffers in SM-index order -- mirroring the
 * epoch-commit discipline -- into one deterministic event stream and
 * exports it as Chrome-trace-event JSON ("cheri-simt-trace-v1") that
 * Perfetto and chrome://tracing load directly.
 *
 * Design constraints, in order:
 *
 *  1. Architecturally invisible. Producers only *observe*: no modelled
 *     state (cycles, counters, memory, trap records) may depend on
 *     whether a buffer is attached. Enforced by tests/test_trace_parity.
 *  2. Cheap when off. The producer-side pattern is a single pointer
 *     test (`if (trace_ && trace_->wants(cat))`) on cold paths only;
 *     nothing is added to per-instruction hot loops except the one
 *     predicted-not-taken profile branch.
 *  3. Deterministic output. Timestamps are modelled cycles (never wall
 *     clock), buffers merge in SM-index order, and the JSON writer is
 *     the insertion-ordered support::json dumper -- so repeated runs
 *     produce byte-identical trace files.
 *
 * The Session also owns the per-kernel profiler: per-PC instruction
 * histograms collected by the SMs (one counter vector per SM, summed at
 * commit), reported per bench point through the "profile" object of the
 * cheri-simt-bench-v1 JSON.
 */

#ifndef CHERI_SIMT_SUPPORT_TRACE_HPP_
#define CHERI_SIMT_SUPPORT_TRACE_HPP_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace support
{
namespace trace
{

/** Event categories; a Session records only categories in its mask. */
enum Category : uint32_t
{
    kCatLaunch = 1u << 0,   ///< launch lifecycle: attempts, retries, degrade
    kCatEngine = 1u << 1,   ///< engine policy decisions
    kCatEpoch = 1u << 2,    ///< epoch commits, merge conflicts, fallbacks
    kCatWatchdog = 1u << 3, ///< watchdog fires and containment retries
    kCatFault = 1u << 4,    ///< fault-injection strikes
    kCatTrap = 1u << 5,     ///< traps with forensic context
    kCatCounter = 1u << 6,  ///< counter samples (hit rate, DRAM traffic)
    kCatAll = 0x7f,
};

/** How an event renders in the Chrome trace ("ph" field). */
enum class EventKind : uint8_t
{
    Span,    ///< "X": complete event with a duration (launch attempts)
    Instant, ///< "i": point event (trap, decision, commit, strike, ...)
    Counter, ///< "C": counter track sample
};

/** One trace event. Events are rare (never per-instruction), so plain
 *  strings and a key/value arg list are fine. */
struct Event
{
    EventKind kind = EventKind::Instant;
    uint32_t category = 0;

    /** Producer SM index; -1 = device-level track. */
    int32_t sm = -1;

    /** Timestamp in modelled cycles, relative to the current launch
     *  attempt (the Session rebases onto the track timeline). */
    uint64_t cycle = 0;

    /** Span duration in modelled cycles (Span events only). */
    uint64_t dur = 0;

    std::string name;

    /** Argument list, emitted in insertion order. */
    std::vector<std::pair<std::string, json::Value>> args;
};

/**
 * A bounded ring of events owned by one producer (one SM, or the
 * device runtime). When full, the oldest event is overwritten and the
 * drop is counted -- deterministically, since inputs are deterministic.
 * Producers on different host threads use different buffers, so no
 * locking is needed anywhere.
 */
class Buffer
{
  public:
    Buffer(uint32_t mask, size_t capacity, int32_t sm)
        : mask_(mask), capacity_(capacity ? capacity : 1), sm_(sm)
    {
    }

    /** Producer-side gate: is this category being recorded? */
    bool wants(uint32_t category) const { return (mask_ & category) != 0; }

    /** Default timestamp for producers with no cycle domain of their
     *  own (the memory system, the device runtime between joins). */
    void setNow(uint64_t cycle) { now_ = cycle; }
    uint64_t now() const { return now_; }

    /** Append an event (stamps the producer's SM index) and return the
     *  stored slot, so callers can attach args. */
    Event &push(Event e);

    /** Convenience: build and push an instant/counter/span event with
     *  the buffer's current now() timestamp. */
    Event &emit(EventKind kind, uint32_t category, std::string name);

    size_t size() const { return events_.size(); }
    uint64_t dropped() const { return dropped_; }

    /** Drain all events (oldest first) and reset the ring. */
    std::vector<Event> drain();

  private:
    uint32_t mask_;
    size_t capacity_;
    int32_t sm_;
    uint64_t now_ = 0;
    uint64_t dropped_ = 0;
    size_t head_ = 0; ///< index of the oldest event once the ring wrapped
    std::vector<Event> events_;
};

/** Session configuration. */
struct SessionConfig
{
    uint32_t mask = kCatAll;

    /** Ring capacity per producer buffer. */
    size_t ringCapacity = 1 << 16;

    /** Collect per-PC instruction histograms for the profiler. */
    bool profile = false;
};

/** Per-kernel profile accumulated for one track (one bench point). */
struct KernelProfile
{
    /** Executed-instruction count per PC (index = pc / 4), summed over
     *  SMs and launch attempts. */
    std::vector<uint64_t> pcCounts;

    /** Disassembly per PC (index = pc / 4), set once per kernel. */
    std::vector<std::string> disasm;

    uint64_t launches = 0;
};

/**
 * One tracing/profiling session: owns the producer buffers, the track
 * timeline, the committed event stream, and the per-track profiles.
 *
 * Intended use (single control thread; SM workers only ever touch
 * their own buffer between attach and join):
 *
 *   session.beginTrack("cheri/VecAdd");
 *   ... device attaches smBuffer(k) to SM k, deviceBuffer() to itself,
 *       runs the launch, then calls commitAttempt(cycles) ...
 *   session.chromeTrace("bench_foo")  // or writeChromeTrace(path)
 */
class Session
{
  public:
    explicit Session(SessionConfig cfg = {});

    const SessionConfig &config() const { return cfg_; }
    bool profiling() const { return cfg_.profile; }

    /** Start (or resume) the track all subsequently committed events
     *  belong to. Flushes pending device-level events first. */
    void beginTrack(const std::string &name);

    /** The device runtime's buffer (sm = -1). */
    Buffer *deviceBuffer() { return &device_; }

    /** The per-SM buffer, created on first use. Create all buffers
     *  before spawning SM worker threads. */
    Buffer *smBuffer(unsigned sm);

    /**
     * Merge this attempt's events -- device buffer first, then SM
     * buffers in SM-index order -- onto the current track, and advance
     * the track timeline by @p attempt_cycles so successive attempts
     * and launches do not overlap.
     */
    void commitAttempt(uint64_t attempt_cycles);

    /** Total committed events (for tests). */
    size_t eventCount() const { return committed_.size(); }

    /** Events dropped by ring overflow across all buffers. */
    uint64_t droppedEvents() const;

    // --- profiler ----------------------------------------------------

    /** Size the per-SM PC-count scratch for a launch of @p num_sms SMs
     *  over a code image of @p code_words words; returns nullptr when
     *  profiling is off. */
    std::vector<uint64_t> *pcScratch(unsigned sm, size_t code_words);

    /** Sum the scratch vectors (SM-index order) into the current
     *  track's profile and clear them. */
    void foldProfile();

    /** Record the kernel disassembly for the current track (first
     *  caller wins; the kernel of a track never changes). */
    void setDisasm(const std::vector<std::string> &disasm);

    /** Profile for @p track, or nullptr if none was collected. */
    const KernelProfile *profileFor(const std::string &track) const;

    // --- export ------------------------------------------------------

    /**
     * Render the committed stream as a Chrome-trace-event JSON document:
     *
     *   { "schema": "cheri-simt-trace-v1", "binary": <binary>,
     *     "displayTimeUnit": "ns", "dropped_events": int,
     *     "traceEvents": [ {"ph":"M"|"X"|"i"|"C", ...}, ... ] }
     *
     * Tracks become processes (pid, first-seen order), producers become
     * threads (tid 0 = device, tid k+1 = SM k); timestamps are modelled
     * cycles reported in microseconds. Deterministic: byte-identical
     * across repeated identical runs.
     */
    json::Value chromeTrace(const std::string &binary);

    /** Write chromeTrace() to @p path (2-space indent, trailing \n). */
    bool writeChromeTrace(const std::string &path, const std::string &binary);

    /** Commit any event still sitting in a producer buffer (e.g. a
     *  retry decision emitted after the last attempt's commit). */
    void flush();

  private:
    struct Committed
    {
        Event event;
        uint32_t track = 0;
    };

    void drainInto(Buffer &buf, uint64_t base);

    SessionConfig cfg_;
    Buffer device_;
    std::vector<std::unique_ptr<Buffer>> sms_;
    std::vector<std::string> trackNames_;
    std::vector<uint64_t> trackBase_; ///< next free cycle per track
    uint32_t curTrack_ = 0;
    bool haveTrack_ = false;
    std::vector<Committed> committed_;

    /** Per-SM profile scratch. A deque so growing it for a later SM
     *  never moves a vector already handed out via pcScratch(). */
    std::deque<std::vector<uint64_t>> pcScratch_;
    std::map<std::string, KernelProfile> profiles_;
};

} // namespace trace
} // namespace support

#endif // CHERI_SIMT_SUPPORT_TRACE_HPP_
