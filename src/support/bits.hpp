/**
 * @file
 * Bit-manipulation utilities shared across the CHERI-SIMT reproduction.
 *
 * Small, constexpr-friendly helpers for slicing, masking and extending
 * fixed-width bit fields. All helpers operate on unsigned 64-bit values and
 * treat widths in [0, 64].
 */

#ifndef CHERI_SIMT_SUPPORT_BITS_HPP_
#define CHERI_SIMT_SUPPORT_BITS_HPP_

#include <bit>
#include <cstdint>

namespace support
{

/** Return a mask with the low @p width bits set. width must be in [0,64]. */
constexpr uint64_t
mask(unsigned width)
{
    return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

/** Extract bits [hi:lo] (inclusive) of @p value, right-aligned. */
constexpr uint64_t
bits(uint64_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & mask(hi - lo + 1);
}

/** Extract the single bit @p idx of @p value. */
constexpr bool
bit(uint64_t value, unsigned idx)
{
    return ((value >> idx) & 1) != 0;
}

/** Insert @p field into bits [hi:lo] of @p value, returning the result. */
constexpr uint64_t
insertBits(uint64_t value, unsigned hi, unsigned lo, uint64_t field)
{
    const uint64_t m = mask(hi - lo + 1);
    return (value & ~(m << lo)) | ((field & m) << lo);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr int64_t
signExtend(uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(value);
    const uint64_t sign_bit = uint64_t{1} << (width - 1);
    const uint64_t v = value & mask(width);
    return static_cast<int64_t>((v ^ sign_bit) - sign_bit);
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr int32_t
signExtend32(uint32_t value, unsigned width)
{
    return static_cast<int32_t>(signExtend(value, width));
}

/** Count leading zeros within a field of @p width bits. */
constexpr unsigned
countLeadingZeros(uint64_t value, unsigned width)
{
    unsigned n = 0;
    for (unsigned i = width; i-- > 0;) {
        if (bit(value, i))
            break;
        ++n;
    }
    return n;
}

/** True if @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** ceil(log2(value)) for value >= 1. */
constexpr unsigned
ceilLog2(uint64_t value)
{
    unsigned n = 0;
    uint64_t v = 1;
    while (v < value) {
        v <<= 1;
        ++n;
    }
    return n;
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr uint64_t
roundUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of @p align (a power of two). */
constexpr uint64_t
roundDown(uint64_t value, uint64_t align)
{
    return value & ~(align - 1);
}

} // namespace support

#endif // CHERI_SIMT_SUPPORT_BITS_HPP_
