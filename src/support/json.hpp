/**
 * @file
 * Minimal JSON document model with a serialiser and a recursive-descent
 * parser. Used by the benchmark harness to emit machine-readable result
 * files (and by CI to validate them) without an external dependency.
 *
 * Objects preserve insertion order so emitted files are deterministic.
 * Numbers distinguish integers (emitted exactly, covering the simulator's
 * 64-bit counters) from doubles.
 */

#ifndef CHERI_SIMT_SUPPORT_JSON_HPP_
#define CHERI_SIMT_SUPPORT_JSON_HPP_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace support
{
namespace json
{

class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    Value() = default;

    static Value null() { return Value(); }

    static Value
    boolean(bool b)
    {
        Value v;
        v.kind_ = Kind::Bool;
        v.bool_ = b;
        return v;
    }

    static Value
    integer(uint64_t i)
    {
        Value v;
        v.kind_ = Kind::Int;
        v.int_ = i;
        return v;
    }

    static Value
    number(double d)
    {
        Value v;
        v.kind_ = Kind::Double;
        v.double_ = d;
        return v;
    }

    static Value
    str(std::string s)
    {
        Value v;
        v.kind_ = Kind::String;
        v.string_ = std::move(s);
        return v;
    }

    static Value
    array()
    {
        Value v;
        v.kind_ = Kind::Array;
        return v;
    }

    static Value
    object()
    {
        Value v;
        v.kind_ = Kind::Object;
        return v;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool
    isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const { return string_; }

    /** Array element count / object member count. */
    size_t size() const;

    /** Append to an array (value must be an array). */
    void push(Value v);

    /** Array element access. */
    const Value &at(size_t i) const { return elems_[i]; }

    /** Object member insert-or-replace; keeps first-insertion order. */
    void set(const std::string &key, Value v);

    bool has(const std::string &key) const;

    /** Object member access; returns a shared null for absent keys. */
    const Value &get(const std::string &key) const;

    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return members_;
    }

    /** Serialise. @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(unsigned indent = 0) const;

    /**
     * Parse @p text into @p out. Returns false (and sets @p err when
     * non-null) on malformed input or trailing garbage.
     */
    static bool parse(const std::string &text, Value &out,
                      std::string *err = nullptr);

  private:
    void dumpTo(std::string &out, unsigned indent, unsigned depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    uint64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Value> elems_;
    std::vector<std::pair<std::string, Value>> members_;
};

/** Escape a string for embedding in a JSON document (no quotes added). */
std::string escape(const std::string &s);

} // namespace json
} // namespace support

#endif // CHERI_SIMT_SUPPORT_JSON_HPP_
