/**
 * @file
 * Lightweight named-counter registry used by the simulator to expose
 * microarchitectural event counts (cycles, instructions, DRAM traffic,
 * register-file events, ...) to benchmarks and tests.
 */

#ifndef CHERI_SIMT_SUPPORT_STATS_HPP_
#define CHERI_SIMT_SUPPORT_STATS_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace support
{

/** A set of named 64-bit counters. */
class StatSet
{
  public:
    /**
     * A cached reference to one counter, for per-instruction code that
     * must not pay a string-keyed map lookup on every event. The handle
     * resolves its counter slot lazily (so the counter is still created
     * on first use, keeping the set of emitted counters unchanged) and
     * re-resolves after clear() via a generation check, since clear()
     * destroys every map node.
     */
    class Handle
    {
      public:
        Handle() = default;
        Handle(StatSet *owner, std::string name)
            : owner_(owner), name_(std::move(name))
        {
        }

        void add(uint64_t delta = 1) { resolve() += delta; }

        void
        trackMax(uint64_t value)
        {
            uint64_t &c = resolve();
            if (c < value)
                c = value;
        }

      private:
        uint64_t &
        resolve()
        {
            if (slot_ == nullptr || generation_ != owner_->generation_) {
                slot_ = &owner_->counters_[name_];
                generation_ = owner_->generation_;
            }
            return *slot_;
        }

        StatSet *owner_ = nullptr;
        std::string name_;
        uint64_t *slot_ = nullptr;
        uint64_t generation_ = 0;
    };

    /** A hot-loop handle for counter @p name (see Handle). */
    Handle handle(const std::string &name) { return Handle(this, name); }

    /** Add @p delta to counter @p name, creating it at zero if absent. */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter @p name to @p value. */
    void
    set(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    /** Track a maximum: counter keeps the largest value ever observed. */
    void
    trackMax(const std::string &name, uint64_t value)
    {
        auto it = counters_.find(name);
        if (it == counters_.end() || it->second < value)
            counters_[name] = value;
    }

    /** Read counter @p name; absent counters read as zero. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    void
    clear()
    {
        counters_.clear();
        ++generation_; // invalidates outstanding Handle slot pointers
    }

    /** All counters in name order (std::map keeps them sorted). */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

    /** Merge another stat set into this one (summing counters). */
    void
    merge(const StatSet &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    /** Render as "name = value" lines for debugging. */
    std::string toString() const;

  private:
    std::map<std::string, uint64_t> counters_;
    uint64_t generation_ = 1;
};

} // namespace support

#endif // CHERI_SIMT_SUPPORT_STATS_HPP_
