#include "support/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "support/logging.hpp"

namespace support
{
namespace trace
{

// --- Buffer ----------------------------------------------------------

Event &
Buffer::push(Event e)
{
    e.sm = sm_;
    if (events_.size() < capacity_) {
        events_.push_back(std::move(e));
        return events_.back();
    }
    // Ring is full: overwrite the oldest event. Deterministic, since
    // the producers are.
    const size_t slot = head_;
    events_[slot] = std::move(e);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    return events_[slot];
}

Event &
Buffer::emit(EventKind kind, uint32_t category, std::string name)
{
    Event e;
    e.kind = kind;
    e.category = category;
    e.cycle = now_;
    e.name = std::move(name);
    return push(std::move(e));
}

std::vector<Event>
Buffer::drain()
{
    std::vector<Event> out;
    out.reserve(events_.size());
    for (size_t i = 0; i < events_.size(); ++i)
        out.push_back(std::move(events_[(head_ + i) % events_.size()]));
    events_.clear();
    head_ = 0;
    return out;
}

// --- Session ---------------------------------------------------------

Session::Session(SessionConfig cfg)
    : cfg_(cfg), device_(cfg.mask, cfg.ringCapacity, -1)
{
}

void
Session::beginTrack(const std::string &name)
{
    flush();
    for (uint32_t i = 0; i < trackNames_.size(); ++i) {
        if (trackNames_[i] == name) {
            curTrack_ = i;
            haveTrack_ = true;
            return;
        }
    }
    curTrack_ = static_cast<uint32_t>(trackNames_.size());
    trackNames_.push_back(name);
    trackBase_.push_back(0);
    haveTrack_ = true;
}

Buffer *
Session::smBuffer(unsigned sm)
{
    while (sms_.size() <= sm)
        sms_.push_back(std::make_unique<Buffer>(
            cfg_.mask, cfg_.ringCapacity,
            static_cast<int32_t>(sms_.size())));
    return sms_[sm].get();
}

void
Session::drainInto(Buffer &buf, uint64_t base)
{
    for (Event &e : buf.drain()) {
        e.cycle += base;
        committed_.push_back(Committed{std::move(e), curTrack_});
    }
}

void
Session::commitAttempt(uint64_t attempt_cycles)
{
    if (!haveTrack_)
        beginTrack("default");
    const uint64_t base = trackBase_[curTrack_];
    drainInto(device_, base);
    for (auto &sm : sms_)
        if (sm)
            drainInto(*sm, base);
    trackBase_[curTrack_] = base + attempt_cycles + 1;
}

void
Session::flush()
{
    if (!haveTrack_) {
        if (device_.size() == 0)
            return;
        beginTrack("default");
    }
    const uint64_t base = trackBase_[curTrack_];
    drainInto(device_, base);
    for (auto &sm : sms_)
        if (sm)
            drainInto(*sm, base);
}

uint64_t
Session::droppedEvents() const
{
    uint64_t n = device_.dropped();
    for (const auto &sm : sms_)
        if (sm)
            n += sm->dropped();
    return n;
}

// --- profiler --------------------------------------------------------

std::vector<uint64_t> *
Session::pcScratch(unsigned sm, size_t code_words)
{
    if (!cfg_.profile)
        return nullptr;
    while (pcScratch_.size() <= sm)
        pcScratch_.emplace_back();
    pcScratch_[sm].assign(code_words, 0);
    return &pcScratch_[sm];
}

void
Session::foldProfile()
{
    if (!cfg_.profile || !haveTrack_)
        return;
    KernelProfile &prof = profiles_[trackNames_[curTrack_]];
    for (auto &scratch : pcScratch_) {
        if (scratch.size() > prof.pcCounts.size())
            prof.pcCounts.resize(scratch.size(), 0);
        for (size_t i = 0; i < scratch.size(); ++i)
            prof.pcCounts[i] += scratch[i];
        scratch.clear();
    }
    ++prof.launches;
}

void
Session::setDisasm(const std::vector<std::string> &disasm)
{
    if (!cfg_.profile || !haveTrack_)
        return;
    KernelProfile &prof = profiles_[trackNames_[curTrack_]];
    if (prof.disasm.empty())
        prof.disasm = disasm;
}

const KernelProfile *
Session::profileFor(const std::string &track) const
{
    auto it = profiles_.find(track);
    return it == profiles_.end() ? nullptr : &it->second;
}

// --- export ----------------------------------------------------------

namespace
{

const char *
phaseOf(EventKind kind)
{
    switch (kind) {
      case EventKind::Span: return "X";
      case EventKind::Counter: return "C";
      default: return "i";
    }
}

std::string
threadName(int32_t sm)
{
    return sm < 0 ? std::string("device") : strprintf("sm%d", sm);
}

} // namespace

json::Value
Session::chromeTrace(const std::string &binary)
{
    flush();

    json::Value doc = json::Value::object();
    doc.set("schema", json::Value::str("cheri-simt-trace-v1"));
    doc.set("binary", json::Value::str(binary));
    doc.set("displayTimeUnit", json::Value::str("ns"));
    doc.set("dropped_events", json::Value::integer(droppedEvents()));

    json::Value events = json::Value::array();

    // Metadata: tracks are processes, producers are threads. Collect
    // the (track, producer) pairs actually present, in a sorted (hence
    // deterministic) order.
    std::map<std::pair<uint32_t, int32_t>, bool> producers;
    for (const Committed &c : committed_)
        producers[{c.track, c.event.sm}] = true;

    for (uint32_t t = 0; t < trackNames_.size(); ++t) {
        json::Value m = json::Value::object();
        m.set("name", json::Value::str("process_name"));
        m.set("ph", json::Value::str("M"));
        m.set("pid", json::Value::integer(t + 1));
        m.set("tid", json::Value::integer(0));
        json::Value args = json::Value::object();
        args.set("name", json::Value::str(trackNames_[t]));
        m.set("args", std::move(args));
        events.push(std::move(m));
    }
    for (const auto &[key, unused] : producers) {
        (void)unused;
        json::Value m = json::Value::object();
        m.set("name", json::Value::str("thread_name"));
        m.set("ph", json::Value::str("M"));
        m.set("pid", json::Value::integer(key.first + 1));
        m.set("tid", json::Value::integer(
                         static_cast<uint64_t>(key.second + 1)));
        json::Value args = json::Value::object();
        args.set("name", json::Value::str(threadName(key.second)));
        m.set("args", std::move(args));
        events.push(std::move(m));
    }

    for (const Committed &c : committed_) {
        const Event &e = c.event;
        json::Value v = json::Value::object();
        v.set("name", json::Value::str(e.name));
        v.set("ph", json::Value::str(phaseOf(e.kind)));
        v.set("ts", json::Value::integer(e.cycle));
        v.set("pid", json::Value::integer(c.track + 1));
        v.set("tid", json::Value::integer(static_cast<uint64_t>(e.sm + 1)));
        if (e.kind == EventKind::Span)
            v.set("dur", json::Value::integer(e.dur));
        if (e.kind == EventKind::Instant)
            v.set("s", json::Value::str("t"));
        if (!e.args.empty()) {
            json::Value args = json::Value::object();
            for (const auto &[k, val] : e.args)
                args.set(k, val);
            v.set("args", std::move(args));
        }
        events.push(std::move(v));
    }

    doc.set("traceEvents", std::move(events));
    return doc;
}

bool
Session::writeChromeTrace(const std::string &path, const std::string &binary)
{
    json::Value doc = chromeTrace(binary);
    std::ofstream out(path);
    if (!out)
        return false;
    out << doc.dump(2) << "\n";
    return bool(out);
}

} // namespace trace
} // namespace support
